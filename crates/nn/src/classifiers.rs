//! Neural text classifiers trained on (pseudo-)labeled feature vectors.
//!
//! The tutorial's methods all bottom out in "train a neural classifier on
//! generated/pseudo-labeled data, then self-train". At our scale the
//! classifier is an MLP over document feature vectors (averaged embeddings,
//! class-oriented representations, PLM pools); `hidden = 0` degenerates to
//! softmax regression. Targets are *soft* distributions throughout, which is
//! what both pseudo-document generation (WeSTClass) and self-training
//! targets require.

use crate::graph::Graph;
use crate::layers::Linear;
use crate::params::{Adam, Binding, ParamStore};
use rand::seq::SliceRandom;
use structmine_linalg::{rng as lrng, Matrix};

/// Training hyper-parameters.
#[derive(Clone, Copy, Debug)]
pub struct TrainConfig {
    /// Number of passes over the data.
    pub epochs: usize,
    /// Minibatch size.
    pub batch: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Global-norm gradient clip (0 disables).
    pub clip: f32,
    /// RNG seed for shuffling and init.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 30,
            batch: 32,
            lr: 1e-2,
            clip: 5.0,
            seed: 7,
        }
    }
}

/// A one-hidden-layer MLP classifier (softmax output).
pub struct MlpClassifier {
    store: ParamStore,
    hidden: Option<Linear>,
    out: Linear,
    d_in: usize,
    n_classes: usize,
}

impl MlpClassifier {
    /// Build a classifier for `d_in`-dim features and `n_classes` outputs.
    /// `hidden = 0` yields plain softmax regression.
    pub fn new(d_in: usize, hidden: usize, n_classes: usize, seed: u64) -> Self {
        let mut store = ParamStore::new();
        let mut rng = lrng::seeded(seed);
        let (hidden_layer, out_in) = if hidden > 0 {
            (
                Some(Linear::new(&mut store, "hidden", d_in, hidden, &mut rng)),
                hidden,
            )
        } else {
            (None, d_in)
        };
        let out = Linear::new(&mut store, "out", out_in, n_classes, &mut rng);
        MlpClassifier {
            store,
            hidden: hidden_layer,
            out,
            d_in,
            n_classes,
        }
    }

    /// Feature dimensionality expected by the classifier.
    pub fn d_in(&self) -> usize {
        self.d_in
    }

    /// Number of output classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn logits(
        &self,
        g: &mut Graph,
        binding: &mut Binding,
        x: crate::graph::NodeId,
    ) -> crate::graph::NodeId {
        let h = match &self.hidden {
            Some(layer) => {
                let z = layer.forward(&self.store, g, binding, x);
                g.relu(z)
            }
            None => x,
        };
        self.out.forward(&self.store, g, binding, h)
    }

    /// Train on features `x` (`n x d_in`) against soft targets `t` (`n x c`).
    /// Returns the mean loss of the final epoch.
    pub fn fit(&mut self, x: &Matrix, targets: &Matrix, cfg: &TrainConfig) -> f32 {
        assert_eq!(x.rows(), targets.rows());
        assert_eq!(x.cols(), self.d_in, "feature dim mismatch");
        assert_eq!(targets.cols(), self.n_classes, "target dim mismatch");
        let n = x.rows();
        if n == 0 {
            return 0.0;
        }
        let mut adam = Adam::new(&self.store, cfg.lr, cfg.clip);
        let mut order: Vec<usize> = (0..n).collect();
        let mut rng = lrng::seeded(cfg.seed);
        let mut last_epoch_loss = 0.0;
        for _ in 0..cfg.epochs {
            order.shuffle(&mut rng);
            let mut epoch_loss = 0.0;
            let mut batches = 0;
            for chunk in order.chunks(cfg.batch.max(1)) {
                let xb = x.select_rows(chunk);
                let tb = targets.select_rows(chunk);
                let mut g = Graph::new();
                let mut binding = Binding::new();
                let xl = g.leaf(xb);
                let logits = self.logits(&mut g, &mut binding, xl);
                let loss = g.softmax_cross_entropy(logits, &tb);
                epoch_loss += g.value(loss).get(0, 0);
                batches += 1;
                g.backward(loss);
                adam.step(&mut self.store, &g, &binding);
            }
            last_epoch_loss = epoch_loss / batches.max(1) as f32;
        }
        last_epoch_loss
    }

    /// Class probability rows for each feature row.
    pub fn predict_proba(&self, x: &Matrix) -> Matrix {
        let mut g = Graph::new();
        let mut binding = Binding::new();
        let xl = g.leaf(x.clone());
        let logits = self.logits(&mut g, &mut binding, xl);
        let mut probs = g.value(logits).clone();
        for i in 0..probs.rows() {
            structmine_linalg::stats::softmax_inplace(probs.row_mut(i));
        }
        probs
    }

    /// Hard argmax predictions.
    pub fn predict(&self, x: &Matrix) -> Vec<usize> {
        let p = self.predict_proba(x);
        (0..p.rows())
            .map(|i| structmine_linalg::vector::argmax(p.row(i)).unwrap_or(0))
            .collect()
    }
}

/// Build a one-hot (or smoothed) target matrix from hard labels.
pub fn one_hot(labels: &[usize], n_classes: usize, smoothing: f32) -> Matrix {
    let off = smoothing / n_classes as f32;
    let on = 1.0 - smoothing + off;
    let mut t = Matrix::filled(labels.len(), n_classes, off);
    for (i, &l) in labels.iter().enumerate() {
        t.set(i, l, on);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// Two Gaussian blobs; classifier must separate them.
    fn blobs(n: usize, seed: u64) -> (Matrix, Vec<usize>) {
        let mut rng = lrng::seeded(seed);
        let mut x = Matrix::zeros(n, 2);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let c = i % 2;
            let cx = if c == 0 { -1.0 } else { 1.0 };
            x.set(i, 0, cx + lrng::gaussian(&mut rng) * 0.3);
            x.set(i, 1, cx + lrng::gaussian(&mut rng) * 0.3);
            y.push(c);
        }
        (x, y)
    }

    #[test]
    fn softmax_regression_separates_blobs() {
        let (x, y) = blobs(200, 1);
        let mut clf = MlpClassifier::new(2, 0, 2, 3);
        clf.fit(
            &x,
            &one_hot(&y, 2, 0.0),
            &TrainConfig {
                epochs: 40,
                ..Default::default()
            },
        );
        let pred = clf.predict(&x);
        let acc = pred.iter().zip(&y).filter(|(a, b)| a == b).count() as f32 / y.len() as f32;
        assert!(acc > 0.97, "acc {acc}");
    }

    #[test]
    fn mlp_solves_xor_that_linear_cannot() {
        let mut rng = lrng::seeded(5);
        let n = 400;
        let mut x = Matrix::zeros(n, 2);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let a: f32 = if rng.gen::<bool>() { 1.0 } else { -1.0 };
            let b: f32 = if rng.gen::<bool>() { 1.0 } else { -1.0 };
            x.set(i, 0, a + lrng::gaussian(&mut rng) * 0.15);
            x.set(i, 1, b + lrng::gaussian(&mut rng) * 0.15);
            y.push(usize::from((a > 0.0) != (b > 0.0)));
        }
        let targets = one_hot(&y, 2, 0.0);
        let mut mlp = MlpClassifier::new(2, 16, 2, 9);
        mlp.fit(
            &x,
            &targets,
            &TrainConfig {
                epochs: 60,
                lr: 2e-2,
                ..Default::default()
            },
        );
        let acc = mlp
            .predict(&x)
            .iter()
            .zip(&y)
            .filter(|(a, b)| a == b)
            .count() as f32
            / n as f32;
        assert!(acc > 0.95, "mlp acc {acc}");

        let mut lin = MlpClassifier::new(2, 0, 2, 9);
        lin.fit(
            &x,
            &targets,
            &TrainConfig {
                epochs: 60,
                lr: 2e-2,
                ..Default::default()
            },
        );
        let lin_acc = lin
            .predict(&x)
            .iter()
            .zip(&y)
            .filter(|(a, b)| a == b)
            .count() as f32
            / n as f32;
        assert!(lin_acc < 0.75, "linear should fail xor, got {lin_acc}");
    }

    #[test]
    fn predict_proba_rows_are_distributions() {
        let (x, y) = blobs(50, 2);
        let mut clf = MlpClassifier::new(2, 4, 2, 3);
        clf.fit(
            &x,
            &one_hot(&y, 2, 0.1),
            &TrainConfig {
                epochs: 5,
                ..Default::default()
            },
        );
        let p = clf.predict_proba(&x);
        for i in 0..p.rows() {
            let sum: f32 = p.row(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn one_hot_with_smoothing() {
        let t = one_hot(&[1], 4, 0.2);
        assert!((t.get(0, 1) - 0.85).abs() < 1e-6);
        assert!((t.get(0, 0) - 0.05).abs() < 1e-6);
        let sum: f32 = t.row(0).iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
    }

    #[test]
    fn training_on_empty_data_is_a_noop() {
        let mut clf = MlpClassifier::new(3, 0, 2, 1);
        let loss = clf.fit(
            &Matrix::zeros(0, 3),
            &Matrix::zeros(0, 2),
            &TrainConfig::default(),
        );
        assert_eq!(loss, 0.0);
    }

    #[test]
    #[should_panic(expected = "feature dim mismatch")]
    fn dim_mismatch_panics() {
        let mut clf = MlpClassifier::new(3, 0, 2, 1);
        clf.fit(
            &Matrix::zeros(4, 2),
            &Matrix::zeros(4, 2),
            &TrainConfig::default(),
        );
    }
}
