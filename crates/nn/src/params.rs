//! Parameter storage and the Adam optimizer.
//!
//! Models own a [`ParamStore`]; each training step binds parameters into a
//! fresh [`Graph`](crate::graph::Graph) as leaves (recording the mapping in a
//! [`Binding`]), runs forward/backward, and calls [`Adam::step`] to apply
//! the leaf gradients back onto the store.

use crate::graph::{Graph, NodeId};
use rand::rngs::StdRng;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use structmine_linalg::{rng as lrng, Matrix, PackedMatrix};
use structmine_store::obs;

/// Handle to a parameter in a [`ParamStore`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParamId(usize);

/// Named parameter matrices.
#[derive(Default)]
pub struct ParamStore {
    values: Vec<Matrix>,
    names: Vec<String>,
    /// Weight-write generation. Every mutation entry point — [`Self::value_mut`],
    /// [`Self::import_values`], and [`Adam::step`] — bumps it, and the pack
    /// cache below is keyed on it, so a panel packed from an old value is
    /// unreachable after any write: the next [`Self::prepacked`] call sees the
    /// generation mismatch and drops the whole cache before repacking.
    generation: u64,
    /// Cached pre-packed weight panels, shared with inference tapes via `Arc`
    /// so an in-flight forward pass keeps its panels alive even if a
    /// concurrent-looking write invalidates the cache between calls.
    packs: Mutex<PackCache>,
}

/// Generation-keyed cache of [`PackedMatrix`] panels, one slot per parameter
/// and orientation.
#[derive(Default)]
struct PackCache {
    generation: u64,
    normal: HashMap<usize, Arc<PackedMatrix>>,
    transposed: HashMap<usize, Arc<PackedMatrix>>,
}

impl ParamStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a parameter with an explicit initial value.
    pub fn add(&mut self, name: &str, value: Matrix) -> ParamId {
        self.values.push(value);
        self.names.push(name.to_string());
        ParamId(self.values.len() - 1)
    }

    /// Register a parameter with Xavier/Glorot-style Gaussian init.
    pub fn xavier(&mut self, name: &str, rows: usize, cols: usize, rng: &mut StdRng) -> ParamId {
        let std = (2.0 / (rows + cols) as f32).sqrt();
        let mut m = Matrix::zeros(rows, cols);
        lrng::fill_gaussian(rng, m.data_mut(), std);
        self.add(name, m)
    }

    /// Register a zero-initialized parameter (biases).
    pub fn zeros(&mut self, name: &str, rows: usize, cols: usize) -> ParamId {
        self.add(name, Matrix::zeros(rows, cols))
    }

    /// Register a ones-initialized parameter (layer-norm gains).
    pub fn ones(&mut self, name: &str, rows: usize, cols: usize) -> ParamId {
        self.add(name, Matrix::filled(rows, cols, 1.0))
    }

    /// Current value.
    pub fn value(&self, id: ParamId) -> &Matrix {
        &self.values[id.0]
    }

    /// Mutable value (for manual updates, e.g. embedding freezing).
    ///
    /// Counts as a weight write: any cached pre-packed panels are
    /// invalidated before the next [`Self::prepacked`] lookup.
    pub fn value_mut(&mut self, id: ParamId) -> &mut Matrix {
        self.note_weight_write();
        &mut self.values[id.0]
    }

    /// Parameter name.
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// Number of parameters.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total scalar count across all parameters.
    pub fn n_scalars(&self) -> usize {
        self.values.iter().map(|m| m.rows() * m.cols()).sum()
    }

    /// Snapshot all parameter values (for serialization).
    pub fn export_values(&self) -> Vec<Matrix> {
        self.values.clone()
    }

    /// Restore parameter values from a snapshot taken on an identically
    /// constructed store.
    ///
    /// # Panics
    /// Panics if the snapshot's shapes do not match.
    pub fn import_values(&mut self, values: Vec<Matrix>) {
        assert_eq!(values.len(), self.values.len(), "parameter count mismatch");
        self.note_weight_write();
        for (cur, new) in self.values.iter_mut().zip(values) {
            assert_eq!(cur.shape(), new.shape(), "parameter shape mismatch");
            *cur = new;
        }
    }

    /// Current weight-write generation (bumped by every mutation entry
    /// point; see the `generation` field).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Record that parameter values may have changed. Cheap: the pack cache
    /// is invalidated lazily, at the next [`Self::prepacked`] lookup.
    fn note_weight_write(&mut self) {
        self.generation = self.generation.wrapping_add(1);
    }

    /// The parameter's value pre-packed into panel layout for
    /// [`Graph::matmul_prepacked`] (`x · W`). Packed once per weight
    /// generation and cached; any write through [`Self::value_mut`],
    /// [`Self::import_values`], or [`Adam::step`] drops the cache, so a
    /// returned pack always reflects the current value.
    pub fn prepacked(&self, id: ParamId) -> Arc<PackedMatrix> {
        self.prepacked_inner(id, false)
    }

    /// Like [`Self::prepacked`], but packed for the transposed product
    /// `x · Wᵀ` — e.g. a tied vocab table used as an output projection.
    /// The orientation is baked into the panels, so the same
    /// [`Graph::matmul_prepacked`] entry point consumes both kinds.
    pub fn prepacked_t(&self, id: ParamId) -> Arc<PackedMatrix> {
        self.prepacked_inner(id, true)
    }

    fn prepacked_inner(&self, id: ParamId, transposed: bool) -> Arc<PackedMatrix> {
        let mut cache = self.packs.lock().unwrap_or_else(|e| e.into_inner());
        if cache.generation != self.generation {
            let stale = cache.normal.len() + cache.transposed.len();
            if stale > 0 {
                obs::counter_add("linalg.prepack.invalidations", stale as u64);
            }
            cache.normal.clear();
            cache.transposed.clear();
            cache.generation = self.generation;
        }
        let map = if transposed {
            &mut cache.transposed
        } else {
            &mut cache.normal
        };
        Arc::clone(map.entry(id.0).or_insert_with(|| {
            let v = &self.values[id.0];
            Arc::new(if transposed {
                PackedMatrix::pack_transposed(v)
            } else {
                PackedMatrix::pack(v)
            })
        }))
    }

    /// Copy the parameter into `graph` as a leaf (through the graph's buffer
    /// arena) and, on recording bindings, record the pairing for the
    /// optimizer step.
    pub fn bind(&self, graph: &mut Graph, id: ParamId, binding: &mut Binding) -> NodeId {
        let node = graph.leaf_copied(&self.values[id.0]);
        if binding.recording {
            binding.pairs.push((id, node));
        }
        node
    }
}

/// The `(parameter, graph leaf)` pairs of one training step.
pub struct Binding {
    pairs: Vec<(ParamId, NodeId)>,
    recording: bool,
}

impl Default for Binding {
    fn default() -> Self {
        Self::new()
    }
}

impl Binding {
    /// An empty binding that records parameter/leaf pairs for a later
    /// optimizer step.
    pub fn new() -> Self {
        Binding {
            pairs: Vec::new(),
            recording: true,
        }
    }

    /// A non-recording binding for forward-only passes: no pairs are kept
    /// (nothing will read gradients), which lets layers take cheaper paths —
    /// e.g. [`crate::layers::Embedding::forward`] gathers just the rows it
    /// needs instead of copying the whole table into the tape.
    pub fn inference() -> Self {
        Binding {
            pairs: Vec::new(),
            recording: false,
        }
    }

    /// Whether this binding records pairs (false for [`Binding::inference`]).
    pub fn is_recording(&self) -> bool {
        self.recording
    }

    /// Iterate over recorded pairs.
    pub fn pairs(&self) -> &[(ParamId, NodeId)] {
        &self.pairs
    }
}

/// Adam optimizer state.
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    clip: f32,
    t: u64,
    m: Vec<Matrix>,
    v: Vec<Matrix>,
}

impl Adam {
    /// Create an optimizer for `store` with the given learning rate and a
    /// global-norm gradient clip (0 disables clipping).
    pub fn new(store: &ParamStore, lr: f32, clip: f32) -> Self {
        let m = store
            .values
            .iter()
            .map(|p| Matrix::zeros(p.rows(), p.cols()))
            .collect();
        let v = store
            .values
            .iter()
            .map(|p| Matrix::zeros(p.rows(), p.cols()))
            .collect();
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            clip,
            t: 0,
            m,
            v,
        }
    }

    /// Override the learning rate (for schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Apply one update using the gradients accumulated on `graph` for every
    /// parameter recorded in `binding`.
    pub fn step(&mut self, store: &mut ParamStore, graph: &Graph, binding: &Binding) {
        self.t += 1;
        // The loop below writes store.values directly (bypassing value_mut),
        // so invalidate any cached pre-packed panels here.
        store.note_weight_write();
        // A parameter may be bound into the tape several times (e.g. once
        // per sequence in a batch); its true gradient is the sum over all
        // of its leaves, applied as ONE update.
        let mut by_param: std::collections::HashMap<usize, Matrix> =
            std::collections::HashMap::new();
        for &(pid, nid) in binding.pairs.iter() {
            // A leaf with no accumulated gradient still participates as an
            // all-zeros contribution (its entry must exist so m/v decay even
            // when the parameter got no signal this step).
            match by_param.entry(pid.0) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    match graph.grad_ref(nid) {
                        Some(g) => e.get_mut().axpy(1.0, g),
                        // Keep the historical `+= 0.0` pass so bit patterns
                        // match the old zeros-materializing path exactly
                        // (it canonicalizes any -0.0 to +0.0).
                        None => {
                            for x in e.get_mut().data_mut() {
                                *x += 0.0;
                            }
                        }
                    }
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    let g = match graph.grad_ref(nid) {
                        Some(g) => g.clone(),
                        None => {
                            let p = &store.values[pid.0];
                            Matrix::zeros(p.rows(), p.cols())
                        }
                    };
                    e.insert(g);
                }
            }
        }
        let mut grads: Vec<(usize, Matrix)> = by_param.into_iter().collect();
        grads.sort_by_key(|&(pid, _)| pid);

        if self.clip > 0.0 {
            let norm: f32 = grads
                .iter()
                .map(|(_, g)| g.data().iter().map(|x| x * x).sum::<f32>())
                .sum::<f32>()
                .sqrt();
            if norm > self.clip {
                let s = self.clip / norm;
                for (_, g) in &mut grads {
                    g.scale_in_place(s);
                }
            }
        }

        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (pid, grad) in grads {
            let m = &mut self.m[pid];
            let v = &mut self.v[pid];
            let p = &mut store.values[pid];
            for ((pv, gv), (mv, vv)) in p
                .data_mut()
                .iter_mut()
                .zip(grad.data())
                .zip(m.data_mut().iter_mut().zip(v.data_mut().iter_mut()))
            {
                *mv = self.beta1 * *mv + (1.0 - self.beta1) * gv;
                *vv = self.beta2 * *vv + (1.0 - self.beta2) * gv * gv;
                let mhat = *mv / bc1;
                let vhat = *vv / bc2;
                *pv -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimize ||x - target||^2 via the tape and Adam; must converge.
    #[test]
    fn adam_minimizes_quadratic() {
        let mut store = ParamStore::new();
        let x = store.add("x", Matrix::filled(1, 3, 5.0));
        let target = Matrix::from_rows(&[&[1.0, -2.0, 0.5]]);
        let mut adam = Adam::new(&store, 0.1, 0.0);
        for _ in 0..300 {
            let mut g = Graph::new();
            let mut binding = Binding::new();
            let xl = store.bind(&mut g, x, &mut binding);
            let t = g.leaf(target.clone());
            let neg_t = g.scale(t, -1.0);
            let diff = g.add(xl, neg_t);
            let sq = g.mul(diff, diff);
            // Sum to scalar via matmul with ones.
            let ones = g.leaf(Matrix::filled(3, 1, 1.0));
            let loss = g.matmul(sq, ones);
            g.backward(loss);
            adam.step(&mut store, &g, &binding);
        }
        for (a, b) in store.value(x).data().iter().zip(target.data()) {
            assert!((a - b).abs() < 1e-2, "{a} vs {b}");
        }
    }

    #[test]
    fn gradient_clipping_bounds_update_magnitude() {
        let mut store = ParamStore::new();
        let x = store.add("x", Matrix::filled(1, 1, 0.0));
        let mut adam = Adam::new(&store, 1.0, 0.001);
        let mut g = Graph::new();
        let mut binding = Binding::new();
        let xl = store.bind(&mut g, x, &mut binding);
        // loss = 1000 * x  ->  raw grad 1000, clipped to 0.001.
        let loss = g.scale(xl, 1000.0);
        g.backward(loss);
        adam.step(&mut store, &g, &binding);
        // Adam normalizes by sqrt(v), so magnitude is bounded by lr regardless;
        // the real check is that clipping didn't blow up and sign is right.
        assert!(store.value(x).get(0, 0) < 0.0);
        assert!(store.value(x).get(0, 0).abs() <= 1.0);
    }

    #[test]
    fn xavier_init_scales_with_fan() {
        let mut store = ParamStore::new();
        let mut rng = lrng::seeded(1);
        let big = store.xavier("big", 400, 400, &mut rng);
        let small = store.xavier("small", 4, 4, &mut rng);
        let std_of = |m: &Matrix| {
            let mean: f32 = m.data().iter().sum::<f32>() / m.data().len() as f32;
            (m.data()
                .iter()
                .map(|x| (x - mean) * (x - mean))
                .sum::<f32>()
                / m.data().len() as f32)
                .sqrt()
        };
        assert!(std_of(store.value(big)) < std_of(store.value(small)));
    }

    /// Repeated prepack lookups between writes share one allocation; any
    /// write entry point makes the next lookup repack from current values.
    #[test]
    fn prepack_cache_shares_until_any_write_entry_point() {
        let mut store = ParamStore::new();
        let id = store.add("w", Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
        let a = store.prepacked(id);
        let b = store.prepacked(id);
        assert!(Arc::ptr_eq(&a, &b), "warm lookup must hit the cache");
        let t = store.prepacked_t(id);
        assert!(!Arc::ptr_eq(&a, &t), "orientations are distinct slots");

        // value_mut invalidates even without an actual data change.
        let gen_before = store.generation();
        store.value_mut(id).set(0, 0, 9.0);
        assert!(store.generation() > gen_before);
        let c = store.prepacked(id);
        assert!(!Arc::ptr_eq(&a, &c), "stale panels must not be reused");

        // import_values invalidates.
        let snapshot = store.export_values();
        let d = store.prepacked(id);
        store.import_values(snapshot);
        let e = store.prepacked(id);
        assert!(!Arc::ptr_eq(&d, &e));

        // Adam::step invalidates (it writes store.values directly).
        let f = store.prepacked(id);
        let mut adam = Adam::new(&store, 0.1, 0.0);
        let mut g = Graph::new();
        let mut binding = Binding::new();
        let leaf = store.bind(&mut g, id, &mut binding);
        let ones_l = g.leaf(Matrix::filled(1, 2, 1.0));
        let ones_r = g.leaf(Matrix::filled(2, 1, 1.0));
        let rowsum = g.matmul(ones_l, leaf);
        let loss = g.matmul(rowsum, ones_r);
        g.backward(loss);
        adam.step(&mut store, &g, &binding);
        let h = store.prepacked(id);
        assert!(!Arc::ptr_eq(&f, &h));
    }

    use proptest::prelude::*;

    proptest! {
        /// A weight write followed by a prepack lookup always yields panels
        /// packed from the *current* value: multiplying through the cached
        /// pack is bitwise identical to packing fresh from the raw matrix.
        #[test]
        fn prepack_after_write_matches_fresh_pack_bitwise(
            vals in proptest::collection::vec(-2.0f32..2.0, 12),
            write_at in proptest::collection::vec(0usize..12, 1..4),
            write_vals in proptest::collection::vec(-2.0f32..2.0, 4),
        ) {
            let mut store = ParamStore::new();
            let id = store.add("w", Matrix::from_vec(3, 4, vals));
            // Warm the cache, then mutate through value_mut.
            let _warm = store.prepacked(id);
            let _warm_t = store.prepacked_t(id);
            for (&i, &v) in write_at.iter().zip(&write_vals) {
                store.value_mut(id).set(i / 4, i % 4, v);
            }
            let x = Matrix::from_rows(&[&[0.5, -1.0, 2.0]]);
            let mut got = Matrix::zeros(1, 4);
            x.matmul_prepacked_into(&store.prepacked(id), &mut got);
            let fresh = PackedMatrix::pack(store.value(id));
            let mut want = Matrix::zeros(1, 4);
            x.matmul_prepacked_into(&fresh, &mut want);
            for (a, b) in got.data().iter().zip(want.data()) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
            // Transposed orientation: x (1×4) · Wᵀ (4×3).
            let xt = Matrix::from_rows(&[&[0.5, -1.0, 2.0, 0.25]]);
            let mut got_t = Matrix::zeros(1, 3);
            xt.matmul_prepacked_into(&store.prepacked_t(id), &mut got_t);
            let fresh_t = PackedMatrix::pack_transposed(store.value(id));
            let mut want_t = Matrix::zeros(1, 3);
            xt.matmul_prepacked_into(&fresh_t, &mut want_t);
            for (a, b) in got_t.data().iter().zip(want_t.data()) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn store_accessors() {
        let mut store = ParamStore::new();
        assert!(store.is_empty());
        let id = store.zeros("b", 2, 3);
        assert_eq!(store.name(id), "b");
        assert_eq!(store.n_scalars(), 6);
        assert_eq!(store.len(), 1);
        store.value_mut(id).set(0, 0, 9.0);
        assert_eq!(store.value(id).get(0, 0), 9.0);
    }
}
