//! Self-training: the bootstrapping refinement loop shared by WeSTClass,
//! WeSHClass, LOTClass and PromptClass.
//!
//! Following Meng et al. (CIKM'18), the current classifier's predictions
//! `p_ij` are sharpened into a target distribution
//! `t_ij ∝ p_ij^2 / f_j` (where `f_j = Σ_i p_ij` is the soft class
//! frequency), the classifier is updated toward those targets, and the loop
//! stops when the fraction of documents whose argmax changed falls below a
//! threshold.

use crate::classifiers::{MlpClassifier, TrainConfig};
use structmine_linalg::{vector, Matrix};

/// Configuration of the self-training loop.
#[derive(Clone, Copy, Debug)]
pub struct SelfTrainConfig {
    /// Maximum refinement iterations.
    pub max_iters: usize,
    /// Epochs of classifier updates per iteration.
    pub epochs_per_iter: usize,
    /// Stop when fewer than this fraction of argmax labels changed.
    pub tol: f32,
    /// Learning rate during refinement (usually smaller than pre-training).
    pub lr: f32,
    /// Minibatch size.
    pub batch: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SelfTrainConfig {
    fn default() -> Self {
        SelfTrainConfig {
            max_iters: 15,
            epochs_per_iter: 3,
            tol: 0.01,
            lr: 3e-3,
            batch: 64,
            seed: 11,
        }
    }
}

/// Compute Meng et al.'s self-training target distribution from the current
/// prediction matrix (`n x c` rows summing to 1).
pub fn target_distribution(p: &Matrix) -> Matrix {
    let (n, c) = p.shape();
    // Soft class frequencies.
    let mut freq = vec![0.0f32; c];
    for row in p.iter_rows() {
        for (f, &v) in freq.iter_mut().zip(row) {
            *f += v;
        }
    }
    for f in &mut freq {
        *f = f.max(1e-9);
    }
    let mut t = Matrix::zeros(n, c);
    for i in 0..n {
        let mut sum = 0.0f32;
        for (j, &f) in freq.iter().enumerate() {
            let v = p.get(i, j);
            let w = v * v / f;
            t.set(i, j, w);
            sum += w;
        }
        if sum > 0.0 {
            for j in 0..c {
                t.set(i, j, t.get(i, j) / sum);
            }
        }
    }
    t
}

/// Outcome of a self-training run.
#[derive(Clone, Debug)]
pub struct SelfTrainReport {
    /// Iterations actually executed.
    pub iterations: usize,
    /// Label-change rate at each iteration.
    pub change_rates: Vec<f32>,
}

/// Refine `clf` on unlabeled features via self-training. Returns the report;
/// the classifier is updated in place.
pub fn self_train(
    clf: &mut MlpClassifier,
    features: &Matrix,
    cfg: &SelfTrainConfig,
) -> SelfTrainReport {
    let mut prev: Vec<usize> = clf.predict(features);
    let mut report = SelfTrainReport {
        iterations: 0,
        change_rates: Vec::new(),
    };
    for it in 0..cfg.max_iters {
        let probs = clf.predict_proba(features);
        let targets = target_distribution(&probs);
        let train_cfg = TrainConfig {
            epochs: cfg.epochs_per_iter,
            batch: cfg.batch,
            lr: cfg.lr,
            clip: 5.0,
            seed: cfg.seed.wrapping_add(it as u64),
        };
        clf.fit(features, &targets, &train_cfg);
        let cur = clf.predict(features);
        let changed = cur.iter().zip(&prev).filter(|(a, b)| a != b).count();
        let rate = changed as f32 / cur.len().max(1) as f32;
        report.iterations = it + 1;
        report.change_rates.push(rate);
        prev = cur;
        if rate < cfg.tol {
            break;
        }
    }
    report
}

/// Fraction of rows whose argmax matches between two prediction matrices.
pub fn agreement(a: &Matrix, b: &Matrix) -> f32 {
    assert_eq!(a.rows(), b.rows());
    if a.rows() == 0 {
        return 1.0;
    }
    let same = (0..a.rows())
        .filter(|&i| vector::argmax(a.row(i)) == vector::argmax(b.row(i)))
        .count();
    same as f32 / a.rows() as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifiers::one_hot;
    use structmine_linalg::rng as lrng;

    #[test]
    fn target_distribution_sharpens_and_normalizes() {
        let p = Matrix::from_rows(&[&[0.6, 0.4], &[0.3, 0.7]]);
        let t = target_distribution(&p);
        for i in 0..2 {
            let sum: f32 = t.row(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
        // The confident side must get more confident.
        assert!(t.get(0, 0) > p.get(0, 0));
        assert!(t.get(1, 1) > p.get(1, 1));
    }

    #[test]
    fn target_distribution_penalizes_dominant_classes() {
        // Same per-row confidence, but class 0 is globally dominant: the
        // frequency regularizer must tilt targets toward class 1.
        let p = Matrix::from_rows(&[&[0.55, 0.45], &[0.55, 0.45], &[0.55, 0.45], &[0.45, 0.55]]);
        let t = target_distribution(&p);
        // Row 3 prefers class 1, and with f_0 > f_1 its target probability
        // for class 1 must exceed the symmetric sharpening value.
        assert!(t.get(3, 1) > 0.6);
    }

    #[test]
    fn self_train_improves_noisy_initialization() {
        // Clean blobs, but the classifier starts from noisy pseudo labels
        // (20% flipped). Self-training should pull accuracy up.
        let mut rng = lrng::seeded(3);
        let n = 300;
        let mut x = Matrix::zeros(n, 2);
        let mut gold = Vec::with_capacity(n);
        for i in 0..n {
            let c = i % 2;
            let cx = if c == 0 { -1.0f32 } else { 1.0 };
            x.set(i, 0, cx + lrng::gaussian(&mut rng) * 0.4);
            x.set(i, 1, -cx + lrng::gaussian(&mut rng) * 0.4);
            gold.push(c);
        }
        let noisy: Vec<usize> = gold
            .iter()
            .enumerate()
            .map(|(i, &c)| if i % 5 == 0 { 1 - c } else { c })
            .collect();
        let mut clf = MlpClassifier::new(2, 8, 2, 1);
        clf.fit(
            &x,
            &one_hot(&noisy, 2, 0.1),
            &TrainConfig {
                epochs: 15,
                ..Default::default()
            },
        );
        let acc_before = clf
            .predict(&x)
            .iter()
            .zip(&gold)
            .filter(|(a, b)| a == b)
            .count() as f32
            / n as f32;
        let report = self_train(&mut clf, &x, &SelfTrainConfig::default());
        let acc_after = clf
            .predict(&x)
            .iter()
            .zip(&gold)
            .filter(|(a, b)| a == b)
            .count() as f32
            / n as f32;
        assert!(report.iterations >= 1);
        assert!(
            acc_after >= acc_before - 0.01,
            "self-training hurt: {acc_before} -> {acc_after}"
        );
        assert!(acc_after > 0.9, "acc after self-training {acc_after}");
    }

    #[test]
    fn self_train_converges_and_stops_early() {
        let x = Matrix::from_rows(&[&[1.0, 0.0], &[0.9, 0.1], &[0.0, 1.0], &[0.1, 0.9]]);
        let mut clf = MlpClassifier::new(2, 0, 2, 2);
        clf.fit(
            &x,
            &one_hot(&[0, 0, 1, 1], 2, 0.0),
            &TrainConfig {
                epochs: 30,
                ..Default::default()
            },
        );
        let report = self_train(
            &mut clf,
            &x,
            &SelfTrainConfig {
                max_iters: 50,
                ..Default::default()
            },
        );
        assert!(
            report.iterations < 50,
            "should stop early, ran {}",
            report.iterations
        );
        assert!(*report.change_rates.last().unwrap() < 0.01);
    }

    #[test]
    fn agreement_bounds() {
        let a = Matrix::from_rows(&[&[0.9, 0.1], &[0.2, 0.8]]);
        let b = Matrix::from_rows(&[&[0.6, 0.4], &[0.7, 0.3]]);
        assert!((agreement(&a, &a) - 1.0).abs() < 1e-6);
        assert!((agreement(&a, &b) - 0.5).abs() < 1e-6);
    }
}
