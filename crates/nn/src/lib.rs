//! Neural building blocks for the `structmine` workspace.
//!
//! * [`graph`] — tape-based reverse-mode autograd over dense matrices, with
//!   finite-difference-verified gradients for every op.
//! * [`params`] — parameter store with Adam, gradient clipping and seeded
//!   initialization.
//! * [`layers`] — linear / embedding / layer-norm modules over the tape.
//! * [`classifiers`] / [`attnpool`] — the neural text classifiers the
//!   tutorial's methods train on pseudo-labeled data (logistic regression,
//!   MLP, and the attention-pooling "HAN-lite" sequence classifier).
//! * [`selftrain`] — Meng et al.'s self-training target distribution and the
//!   generic bootstrapping loop shared by WeSTClass/LOTClass/WeSHClass.

pub mod attnpool;
pub mod classifiers;
pub mod graph;
pub mod layers;
pub mod params;
pub mod selftrain;

pub use attnpool::AttnPoolClassifier;
pub use classifiers::{MlpClassifier, TrainConfig};
pub use graph::{Graph, NodeId};
pub use params::{Adam, ParamStore};
