//! Reverse-mode automatic differentiation over dense `f32` matrices.
//!
//! A [`Graph`] is a tape of [`Node`]s. Forward methods append nodes; calling
//! [`Graph::backward`] on a scalar loss walks the tape in reverse and
//! accumulates gradients. Operations are an enum rather than closures so the
//! backward pass can borrow values and gradients without aliasing gymnastics.
//!
//! The op set is exactly what the workspace needs: affine maps, activations,
//! layer norm, row softmax (attention), embedding gather, pooling, column
//! concat (multi-head attention), and two fused losses (softmax
//! cross-entropy with soft targets, sigmoid BCE). Each op's gradient is
//! verified against finite differences in the tests.

use structmine_linalg::Matrix;

/// Handle to a node in a [`Graph`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NodeId(usize);

#[derive(Debug)]
enum Op {
    Leaf,
    Add(NodeId, NodeId),
    AddRowBroadcast(NodeId, NodeId),
    Scale(NodeId, f32),
    Mul(NodeId, NodeId),
    MatMul(NodeId, NodeId),
    Transpose(NodeId),
    Relu(NodeId),
    Gelu(NodeId),
    Tanh(NodeId),
    Sigmoid(NodeId),
    RowSoftmax(NodeId),
    /// (input, gain, bias, cached normalized rows, cached inv-std per row)
    LayerNorm(NodeId, NodeId, NodeId, Matrix, Vec<f32>),
    SelectRows(NodeId, Vec<usize>),
    MeanRows(NodeId),
    ConcatCols(Vec<NodeId>),
    /// (logits, soft target distribution, cached probabilities)
    SoftmaxCe(NodeId, Matrix, Matrix),
    /// (logits, 0/1-or-soft targets, cached sigmoid values)
    SigmoidBce(NodeId, Matrix, Matrix),
}

struct Node {
    value: Matrix,
    grad: Option<Matrix>,
    op: Op,
}

/// A tape of matrix operations supporting reverse-mode differentiation.
#[derive(Default)]
pub struct Graph {
    nodes: Vec<Node>,
}

impl Graph {
    /// An empty tape.
    pub fn new() -> Self {
        Graph { nodes: Vec::new() }
    }

    fn push(&mut self, value: Matrix, op: Op) -> NodeId {
        self.nodes.push(Node {
            value,
            grad: None,
            op,
        });
        NodeId(self.nodes.len() - 1)
    }

    /// Insert a leaf (input or parameter copy).
    pub fn leaf(&mut self, value: Matrix) -> NodeId {
        self.push(value, Op::Leaf)
    }

    /// The forward value of a node.
    pub fn value(&self, id: NodeId) -> &Matrix {
        &self.nodes[id.0].value
    }

    /// The accumulated gradient of a node (zeros if it never received one).
    pub fn grad(&self, id: NodeId) -> Matrix {
        match &self.nodes[id.0].grad {
            Some(g) => g.clone(),
            None => {
                let v = &self.nodes[id.0].value;
                Matrix::zeros(v.rows(), v.cols())
            }
        }
    }

    /// Number of nodes on the tape.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    // --- forward ops -------------------------------------------------------

    /// Element-wise `a + b`.
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.nodes[a.0].value.add(&self.nodes[b.0].value);
        self.push(v, Op::Add(a, b))
    }

    /// Add a `1 x d` row vector to every row of `a`.
    pub fn add_row_broadcast(&mut self, a: NodeId, bias: NodeId) -> NodeId {
        let b = &self.nodes[bias.0].value;
        assert_eq!(b.rows(), 1, "bias must be a row vector");
        let v = self.nodes[a.0].value.add_row_broadcast(b.row(0));
        self.push(v, Op::AddRowBroadcast(a, bias))
    }

    /// `a * s`.
    pub fn scale(&mut self, a: NodeId, s: f32) -> NodeId {
        let v = self.nodes[a.0].value.scale(s);
        self.push(v, Op::Scale(a, s))
    }

    /// Element-wise `a ⊙ b`.
    pub fn mul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (va, vb) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
        assert_eq!(va.shape(), vb.shape(), "mul shape mismatch");
        let data: Vec<f32> = va
            .data()
            .iter()
            .zip(vb.data())
            .map(|(x, y)| x * y)
            .collect();
        let v = Matrix::from_vec(va.rows(), va.cols(), data);
        self.push(v, Op::Mul(a, b))
    }

    /// Matrix product `a × b`.
    pub fn matmul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.nodes[a.0].value.matmul(&self.nodes[b.0].value);
        self.push(v, Op::MatMul(a, b))
    }

    /// Transpose.
    pub fn transpose(&mut self, a: NodeId) -> NodeId {
        let v = self.nodes[a.0].value.transpose();
        self.push(v, Op::Transpose(a))
    }

    /// ReLU.
    pub fn relu(&mut self, a: NodeId) -> NodeId {
        let v = self.map_unary(a, |x| x.max(0.0));
        self.push(v, Op::Relu(a))
    }

    /// GELU (tanh approximation).
    pub fn gelu(&mut self, a: NodeId) -> NodeId {
        let v = self.map_unary(a, gelu);
        self.push(v, Op::Gelu(a))
    }

    /// tanh.
    pub fn tanh(&mut self, a: NodeId) -> NodeId {
        let v = self.map_unary(a, f32::tanh);
        self.push(v, Op::Tanh(a))
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: NodeId) -> NodeId {
        let v = self.map_unary(a, sigmoid);
        self.push(v, Op::Sigmoid(a))
    }

    /// Softmax independently over each row.
    pub fn row_softmax(&mut self, a: NodeId) -> NodeId {
        let va = &self.nodes[a.0].value;
        let mut v = va.clone();
        for i in 0..v.rows() {
            structmine_linalg::stats::softmax_inplace(v.row_mut(i));
        }
        self.push(v, Op::RowSoftmax(a))
    }

    /// Layer normalization over each row, with learned gain and bias
    /// (`1 x d` leaves).
    pub fn layer_norm(&mut self, a: NodeId, gain: NodeId, bias: NodeId) -> NodeId {
        const EPS: f32 = 1e-5;
        let va = &self.nodes[a.0].value;
        let g = &self.nodes[gain.0].value;
        let b = &self.nodes[bias.0].value;
        assert_eq!(g.rows(), 1);
        assert_eq!(b.rows(), 1);
        let (n, d) = va.shape();
        let mut normalized = Matrix::zeros(n, d);
        let mut inv_std = Vec::with_capacity(n);
        let mut out = Matrix::zeros(n, d);
        for i in 0..n {
            let row = va.row(i);
            let mean = row.iter().sum::<f32>() / d as f32;
            let var = row.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / d as f32;
            let istd = 1.0 / (var + EPS).sqrt();
            inv_std.push(istd);
            for (j, &x) in row.iter().enumerate() {
                let xhat = (x - mean) * istd;
                normalized.set(i, j, xhat);
                out.set(i, j, xhat * g.get(0, j) + b.get(0, j));
            }
        }
        self.push(out, Op::LayerNorm(a, gain, bias, normalized, inv_std))
    }

    /// Gather rows of `a` by index (embedding lookup; duplicates allowed).
    pub fn select_rows(&mut self, a: NodeId, indices: &[usize]) -> NodeId {
        let v = self.nodes[a.0].value.select_rows(indices);
        self.push(v, Op::SelectRows(a, indices.to_vec()))
    }

    /// Mean over rows, producing a `1 x d` vector.
    pub fn mean_rows(&mut self, a: NodeId) -> NodeId {
        let mean = self.nodes[a.0].value.col_mean();
        let d = mean.len();
        self.push(Matrix::from_vec(1, d, mean), Op::MeanRows(a))
    }

    /// Concatenate matrices with equal row counts along columns.
    pub fn concat_cols(&mut self, parts: &[NodeId]) -> NodeId {
        assert!(!parts.is_empty());
        let n = self.nodes[parts[0].0].value.rows();
        let total: usize = parts.iter().map(|p| self.nodes[p.0].value.cols()).sum();
        let mut v = Matrix::zeros(n, total);
        let mut off = 0;
        for &p in parts {
            let vp = &self.nodes[p.0].value;
            assert_eq!(vp.rows(), n, "concat_cols row mismatch");
            for i in 0..n {
                v.row_mut(i)[off..off + vp.cols()].copy_from_slice(vp.row(i));
            }
            off += vp.cols();
        }
        self.push(v, Op::ConcatCols(parts.to_vec()))
    }

    /// Fused softmax + cross-entropy against soft target rows. Returns a
    /// `1 x 1` scalar: `-(1/n) Σ_i Σ_c T_ic log P_ic`.
    pub fn softmax_cross_entropy(&mut self, logits: NodeId, targets: &Matrix) -> NodeId {
        let vl = &self.nodes[logits.0].value;
        assert_eq!(vl.shape(), targets.shape(), "softmax_ce shape mismatch");
        let mut probs = vl.clone();
        let mut loss = 0.0f32;
        for i in 0..probs.rows() {
            structmine_linalg::stats::softmax_inplace(probs.row_mut(i));
            for (p, t) in probs.row(i).iter().zip(targets.row(i)) {
                if *t > 0.0 {
                    loss -= t * p.max(1e-12).ln();
                }
            }
        }
        loss /= probs.rows().max(1) as f32;
        let v = Matrix::from_vec(1, 1, vec![loss]);
        self.push(v, Op::SoftmaxCe(logits, targets.clone(), probs))
    }

    /// Fused sigmoid + binary cross-entropy, mean over all entries.
    pub fn sigmoid_bce(&mut self, logits: NodeId, targets: &Matrix) -> NodeId {
        let vl = &self.nodes[logits.0].value;
        assert_eq!(vl.shape(), targets.shape(), "sigmoid_bce shape mismatch");
        let mut sig = vl.clone();
        let mut loss = 0.0f32;
        for (s, t) in sig.data_mut().iter_mut().zip(targets.data()) {
            *s = sigmoid(*s);
            let p = s.clamp(1e-7, 1.0 - 1e-7);
            loss -= t * p.ln() + (1.0 - t) * (1.0 - p).ln();
        }
        loss /= (vl.rows() * vl.cols()).max(1) as f32;
        let v = Matrix::from_vec(1, 1, vec![loss]);
        self.push(v, Op::SigmoidBce(logits, targets.clone(), sig))
    }

    fn map_unary(&self, a: NodeId, f: impl Fn(f32) -> f32) -> Matrix {
        let va = &self.nodes[a.0].value;
        let data: Vec<f32> = va.data().iter().map(|&x| f(x)).collect();
        Matrix::from_vec(va.rows(), va.cols(), data)
    }

    // --- backward ----------------------------------------------------------

    /// Run backpropagation from `loss` (must be `1 x 1`), seeding its
    /// gradient with 1. Gradients accumulate, so several backward calls on
    /// one tape sum their gradients (useful for multi-task losses).
    pub fn backward(&mut self, loss: NodeId) {
        assert_eq!(
            self.nodes[loss.0].value.shape(),
            (1, 1),
            "loss must be scalar"
        );
        accumulate(
            &mut self.nodes[loss.0].grad,
            &Matrix::from_vec(1, 1, vec![1.0]),
        );
        for i in (0..=loss.0).rev() {
            let Some(grad_out) = self.nodes[i].grad.clone() else {
                continue;
            };
            // Temporarily take the op so parent values can be read while the
            // contributions are computed, then restore it and accumulate.
            let op = std::mem::replace(&mut self.nodes[i].op, Op::Leaf);
            let contributions = self.backward_op(&op, i, &grad_out);
            self.nodes[i].op = op;
            for (id, g) in contributions {
                self.acc(id, g);
            }
        }
    }

    /// Gradient contributions of one node to its parents.
    fn backward_op(&self, op: &Op, node: usize, grad_out: &Matrix) -> Vec<(NodeId, Matrix)> {
        match op {
            Op::Leaf => Vec::new(),
            Op::Add(a, b) => vec![(*a, grad_out.clone()), (*b, grad_out.clone())],
            Op::AddRowBroadcast(a, bias) => {
                let mut bias_grad = vec![0.0f32; grad_out.cols()];
                for r in grad_out.iter_rows() {
                    for (bg, &g) in bias_grad.iter_mut().zip(r) {
                        *bg += g;
                    }
                }
                let cols = grad_out.cols();
                vec![
                    (*a, grad_out.clone()),
                    (*bias, Matrix::from_vec(1, cols, bias_grad)),
                ]
            }
            Op::Scale(a, s) => vec![(*a, grad_out.scale(*s))],
            Op::Mul(a, b) => {
                let ga = hadamard(grad_out, &self.nodes[b.0].value);
                let gb = hadamard(grad_out, &self.nodes[a.0].value);
                vec![(*a, ga), (*b, gb)]
            }
            Op::MatMul(a, b) => {
                let ga = grad_out.matmul_t(&self.nodes[b.0].value);
                let gb = self.nodes[a.0].value.transpose().matmul(grad_out);
                vec![(*a, ga), (*b, gb)]
            }
            Op::Transpose(a) => vec![(*a, grad_out.transpose())],
            Op::Relu(a) => {
                let g = masked_grad(grad_out, &self.nodes[a.0].value, |x| {
                    if x > 0.0 {
                        1.0
                    } else {
                        0.0
                    }
                });
                vec![(*a, g)]
            }
            Op::Gelu(a) => {
                vec![(*a, masked_grad(grad_out, &self.nodes[a.0].value, gelu_grad))]
            }
            Op::Tanh(a) => {
                vec![(
                    *a,
                    masked_grad(grad_out, &self.nodes[node].value, |y| 1.0 - y * y),
                )]
            }
            Op::Sigmoid(a) => {
                vec![(
                    *a,
                    masked_grad(grad_out, &self.nodes[node].value, |y| y * (1.0 - y)),
                )]
            }
            Op::RowSoftmax(a) => {
                let s = &self.nodes[node].value;
                let mut g = Matrix::zeros(s.rows(), s.cols());
                for r in 0..s.rows() {
                    let srow = s.row(r);
                    let dot: f32 = grad_out.row(r).iter().zip(srow).map(|(d, v)| d * v).sum();
                    for (c, &sv) in srow.iter().enumerate() {
                        g.set(r, c, sv * (grad_out.get(r, c) - dot));
                    }
                }
                vec![(*a, g)]
            }
            Op::LayerNorm(a, gain, bias, xhat, inv_std) => {
                let (n, d) = grad_out.shape();
                let g_vec = self.nodes[gain.0].value.row(0).to_vec();
                let mut ga = Matrix::zeros(n, d);
                let mut ggain = vec![0.0f32; d];
                let mut gbias = vec![0.0f32; d];
                for (r, &istd) in inv_std.iter().enumerate() {
                    let go = grad_out.row(r);
                    let xh = xhat.row(r);
                    let dxhat: Vec<f32> = go.iter().zip(&g_vec).map(|(g, gn)| g * gn).collect();
                    let mean_dx = dxhat.iter().sum::<f32>() / d as f32;
                    let mean_dx_xh =
                        dxhat.iter().zip(xh).map(|(dx, x)| dx * x).sum::<f32>() / d as f32;
                    for c in 0..d {
                        ga.set(r, c, istd * (dxhat[c] - mean_dx - xh[c] * mean_dx_xh));
                        ggain[c] += go[c] * xh[c];
                        gbias[c] += go[c];
                    }
                }
                vec![
                    (*a, ga),
                    (*gain, Matrix::from_vec(1, d, ggain)),
                    (*bias, Matrix::from_vec(1, d, gbias)),
                ]
            }
            Op::SelectRows(a, indices) => {
                let src = &self.nodes[a.0].value;
                let mut g = Matrix::zeros(src.rows(), src.cols());
                for (out_row, &src_row) in indices.iter().enumerate() {
                    for (t, &s) in g.row_mut(src_row).iter_mut().zip(grad_out.row(out_row)) {
                        *t += s;
                    }
                }
                vec![(*a, g)]
            }
            Op::MeanRows(a) => {
                let src = &self.nodes[a.0].value;
                let n = src.rows();
                let inv = 1.0 / n as f32;
                let mut g = Matrix::zeros(n, src.cols());
                for r in 0..n {
                    for (t, &s) in g.row_mut(r).iter_mut().zip(grad_out.row(0)) {
                        *t = s * inv;
                    }
                }
                vec![(*a, g)]
            }
            Op::ConcatCols(parts) => {
                let mut out = Vec::with_capacity(parts.len());
                let mut off = 0;
                for &p in parts {
                    let cols = self.nodes[p.0].value.cols();
                    let rows = grad_out.rows();
                    let mut g = Matrix::zeros(rows, cols);
                    for r in 0..rows {
                        g.row_mut(r)
                            .copy_from_slice(&grad_out.row(r)[off..off + cols]);
                    }
                    off += cols;
                    out.push((p, g));
                }
                out
            }
            Op::SoftmaxCe(logits, targets, probs) => {
                let scale = grad_out.get(0, 0) / probs.rows().max(1) as f32;
                vec![(*logits, probs.sub(targets).scale(scale))]
            }
            Op::SigmoidBce(logits, targets, sig) => {
                let n = (sig.rows() * sig.cols()).max(1) as f32;
                let scale = grad_out.get(0, 0) / n;
                vec![(*logits, sig.sub(targets).scale(scale))]
            }
        }
    }

    fn acc(&mut self, id: NodeId, grad: Matrix) {
        accumulate(&mut self.nodes[id.0].grad, &grad);
    }
}

fn accumulate(slot: &mut Option<Matrix>, grad: &Matrix) {
    match slot {
        Some(g) => g.axpy(1.0, grad),
        None => *slot = Some(grad.clone()),
    }
}

fn hadamard(a: &Matrix, b: &Matrix) -> Matrix {
    let data: Vec<f32> = a.data().iter().zip(b.data()).map(|(x, y)| x * y).collect();
    Matrix::from_vec(a.rows(), a.cols(), data)
}

/// grad_out ⊙ f(reference) elementwise.
fn masked_grad(grad_out: &Matrix, reference: &Matrix, f: impl Fn(f32) -> f32) -> Matrix {
    let data: Vec<f32> = grad_out
        .data()
        .iter()
        .zip(reference.data())
        .map(|(&g, &r)| g * f(r))
        .collect();
    Matrix::from_vec(grad_out.rows(), grad_out.cols(), data)
}

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

const GELU_C: f32 = 0.797_884_6; // sqrt(2/pi)

fn gelu(x: f32) -> f32 {
    0.5 * x * (1.0 + (GELU_C * (x + 0.044715 * x * x * x)).tanh())
}

fn gelu_grad(x: f32) -> f32 {
    let inner = GELU_C * (x + 0.044715 * x * x * x);
    let t = inner.tanh();
    let dinner = GELU_C * (1.0 + 3.0 * 0.044715 * x * x);
    0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * dinner
}

#[cfg(test)]
mod tests {
    use super::*;
    use structmine_linalg::rng;

    /// Numerically check d(loss)/d(leaf) for a builder-defined graph.
    fn check_gradient(build: impl Fn(&mut Graph, NodeId) -> NodeId, leaf_value: &Matrix, tol: f32) {
        let mut g = Graph::new();
        let x = g.leaf(leaf_value.clone());
        let loss = build(&mut g, x);
        g.backward(loss);
        let analytic = g.grad(x);

        let eps = 1e-2f32;
        for i in 0..leaf_value.rows() {
            for j in 0..leaf_value.cols() {
                let mut plus = leaf_value.clone();
                plus.set(i, j, plus.get(i, j) + eps);
                let mut minus = leaf_value.clone();
                minus.set(i, j, minus.get(i, j) - eps);
                let mut gp = Graph::new();
                let xp = gp.leaf(plus);
                let lp = build(&mut gp, xp);
                let mut gm = Graph::new();
                let xm = gm.leaf(minus);
                let lm = build(&mut gm, xm);
                let numeric = (gp.value(lp).get(0, 0) - gm.value(lm).get(0, 0)) / (2.0 * eps);
                let a = analytic.get(i, j);
                assert!(
                    (a - numeric).abs() < tol * (1.0 + numeric.abs()),
                    "grad mismatch at ({i},{j}): analytic {a}, numeric {numeric}"
                );
            }
        }
    }

    fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut r = rng::seeded(seed);
        let mut m = Matrix::zeros(rows, cols);
        rng::fill_gaussian(&mut r, m.data_mut(), 0.5);
        m
    }

    /// Reduce any matrix to a scalar by summing entries (via matmul with ones).
    fn sum_to_scalar(g: &mut Graph, x: NodeId) -> NodeId {
        let (r, c) = g.value(x).shape();
        let ones_r = g.leaf(Matrix::filled(1, r, 1.0));
        let ones_c = g.leaf(Matrix::filled(c, 1, 1.0));
        let rowsum = g.matmul(ones_r, x);
        g.matmul(rowsum, ones_c)
    }

    #[test]
    fn matmul_gradient_matches_finite_difference() {
        let w = random_matrix(4, 3, 1);
        check_gradient(
            |g, x| {
                let w = g.leaf(w.clone());
                let y = g.matmul(x, w);
                let y = g.tanh(y);
                sum_to_scalar(g, y)
            },
            &random_matrix(2, 4, 2),
            1e-2,
        );
    }

    #[test]
    fn activations_gradients_match() {
        for act in 0..4 {
            check_gradient(
                |g, x| {
                    let y = match act {
                        0 => g.relu(x),
                        1 => g.gelu(x),
                        2 => g.tanh(x),
                        _ => g.sigmoid(x),
                    };
                    sum_to_scalar(g, y)
                },
                &random_matrix(3, 3, 30 + act),
                2e-2,
            );
        }
    }

    #[test]
    fn row_softmax_gradient_matches() {
        let probe = random_matrix(3, 4, 20);
        check_gradient(
            |g, x| {
                let s = g.row_softmax(x);
                let p = g.leaf(probe.clone());
                let weighted = g.mul(s, p);
                sum_to_scalar(g, weighted)
            },
            &random_matrix(3, 4, 21),
            2e-2,
        );
    }

    #[test]
    fn layer_norm_gradient_matches() {
        let gain = random_matrix(1, 5, 30);
        let bias = random_matrix(1, 5, 31);
        let probe = random_matrix(2, 5, 32);
        check_gradient(
            |g, x| {
                let gn = g.leaf(gain.clone());
                let bs = g.leaf(bias.clone());
                let y = g.layer_norm(x, gn, bs);
                let p = g.leaf(probe.clone());
                let w = g.mul(y, p);
                sum_to_scalar(g, w)
            },
            &random_matrix(2, 5, 33),
            3e-2,
        );
    }

    #[test]
    fn layer_norm_param_gradients_match() {
        // Also verify gain/bias gradients by treating gain as the leaf.
        let x = random_matrix(2, 4, 40);
        let bias = random_matrix(1, 4, 41);
        check_gradient(
            |g, gain| {
                let xv = g.leaf(x.clone());
                let bs = g.leaf(bias.clone());
                let y = g.layer_norm(xv, gain, bs);
                sum_to_scalar(g, y)
            },
            &random_matrix(1, 4, 42),
            2e-2,
        );
    }

    #[test]
    fn select_rows_and_mean_rows_gradients_match() {
        check_gradient(
            |g, x| {
                let sel = g.select_rows(x, &[0, 2, 2, 1]);
                let m = g.mean_rows(sel);
                let t = g.tanh(m);
                sum_to_scalar(g, t)
            },
            &random_matrix(3, 4, 50),
            2e-2,
        );
    }

    #[test]
    fn concat_and_broadcast_gradients_match() {
        let bias = random_matrix(1, 6, 60);
        check_gradient(
            |g, x| {
                let cat = g.concat_cols(&[x, x]);
                let b = g.leaf(bias.clone());
                let y = g.add_row_broadcast(cat, b);
                let y = g.sigmoid(y);
                sum_to_scalar(g, y)
            },
            &random_matrix(2, 3, 61),
            2e-2,
        );
    }

    #[test]
    fn softmax_ce_gradient_matches() {
        let mut targets = Matrix::zeros(3, 4);
        targets.set(0, 1, 1.0);
        targets.set(1, 0, 0.5);
        targets.set(1, 3, 0.5);
        targets.set(2, 2, 1.0);
        check_gradient(
            |g, x| g.softmax_cross_entropy(x, &targets),
            &random_matrix(3, 4, 70),
            2e-2,
        );
    }

    #[test]
    fn sigmoid_bce_gradient_matches() {
        let targets = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
        check_gradient(
            |g, x| g.sigmoid_bce(x, &targets),
            &random_matrix(3, 2, 80),
            2e-2,
        );
    }

    #[test]
    fn transpose_mul_scale_chain_matches() {
        let probe = random_matrix(4, 2, 90);
        check_gradient(
            |g, x| {
                let t = g.transpose(x);
                let p = g.leaf(probe.clone());
                let m = g.mul(t, p);
                let s = g.scale(m, 0.37);
                sum_to_scalar(g, s)
            },
            &random_matrix(2, 4, 91),
            2e-2,
        );
    }

    #[test]
    fn gradients_accumulate_when_node_reused() {
        // loss = sum(x*x): dx should be 2x (x used twice through Mul).
        let x_val = random_matrix(2, 2, 100);
        let mut g = Graph::new();
        let x = g.leaf(x_val.clone());
        let sq = g.mul(x, x);
        let loss = sum_to_scalar(&mut g, sq);
        g.backward(loss);
        let grad = g.grad(x);
        for i in 0..2 {
            for j in 0..2 {
                assert!((grad.get(i, j) - 2.0 * x_val.get(i, j)).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn cross_entropy_loss_value_is_correct() {
        let mut g = Graph::new();
        let logits = g.leaf(Matrix::from_rows(&[&[0.0, 0.0]]));
        let targets = Matrix::from_rows(&[&[1.0, 0.0]]);
        let loss = g.softmax_cross_entropy(logits, &targets);
        assert!((g.value(loss).get(0, 0) - (2.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "loss must be scalar")]
    fn backward_rejects_non_scalar() {
        let mut g = Graph::new();
        let x = g.leaf(Matrix::zeros(2, 2));
        g.backward(x);
    }
}
