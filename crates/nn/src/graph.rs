//! Reverse-mode automatic differentiation over dense `f32` matrices.
//!
//! A [`Graph`] is a tape of [`Node`]s. Forward methods append nodes; calling
//! [`Graph::backward`] on a scalar loss walks the tape in reverse and
//! accumulates gradients. Operations are an enum rather than closures so the
//! backward pass can borrow values and gradients without aliasing gymnastics.
//!
//! The op set is exactly what the workspace needs: affine maps, activations,
//! layer norm, row softmax (attention, plain and fused with the attention
//! scale), the transpose-free product `a × bᵀ`, embedding gather, pooling,
//! column concat (multi-head attention), and two fused losses (softmax
//! cross-entropy with soft targets, sigmoid BCE). Each op's gradient is
//! verified against finite differences in the tests.
//!
//! # Buffer arena
//!
//! Every node value, gradient, and backward intermediate is drawn from a
//! thread-local pool of recycled buffers (see [`arena`]) and returned to it
//! when the graph is dropped or [`Graph::reset`]. Training loops that build
//! hundreds of same-shaped nodes per step therefore stop allocating after
//! the first step. The arena is bitwise-transparent: a recycled buffer is
//! always fully overwritten (or explicitly zeroed) before use, so results
//! are byte-identical to freshly allocated storage — property-tested below.

use structmine_linalg::{fastmath, simd, Matrix, PackedMatrix, Precision};

/// Thread-local recycling pool for matrix buffers, keyed by element count.
///
/// Thread-local (rather than shared) so no lock sits on the training hot
/// path and so reuse on one thread can never observe another thread's
/// scheduling — the pool affects only *where* buffers come from, never what
/// is computed, keeping the exec layer's bitwise thread-count invariance
/// intact. Reuse totals are reported through the `nn.arena_reuse_threads`
/// counter (flushed per graph); the `threads` token keeps it under the run
/// report's masking convention since per-thread warm-up makes the value
/// legitimately thread-count-dependent.
mod arena {
    use std::cell::{Cell, RefCell};
    use std::collections::HashMap;
    use structmine_linalg::Matrix;

    /// Buffers retained per distinct length — roughly one training step's
    /// worth of live matrices; anything beyond that is released to the
    /// allocator.
    const MAX_PER_LEN: usize = 256;

    thread_local! {
        static POOL: RefCell<HashMap<usize, Vec<Vec<f32>>>> = RefCell::new(HashMap::new());
        static REUSED: Cell<u64> = const { Cell::new(0) };
    }

    /// Take a `rows x cols` matrix with unspecified contents. The caller
    /// must fully overwrite it before the values are observable.
    pub(crate) fn take_uninit(rows: usize, cols: usize) -> Matrix {
        let len = rows * cols;
        let recycled = POOL.with(|p| p.borrow_mut().get_mut(&len).and_then(Vec::pop));
        match recycled {
            Some(buf) => {
                REUSED.with(|c| c.set(c.get() + 1));
                Matrix::from_vec(rows, cols, buf)
            }
            None => Matrix::zeros(rows, cols),
        }
    }

    /// Take a `rows x cols` matrix guaranteed to be all zeros.
    pub(crate) fn take_zeroed(rows: usize, cols: usize) -> Matrix {
        let mut m = take_uninit(rows, cols);
        m.data_mut().fill(0.0);
        m
    }

    /// Take a pooled copy of `src`.
    pub(crate) fn take_copy(src: &Matrix) -> Matrix {
        let mut m = take_uninit(src.rows(), src.cols());
        m.data_mut().copy_from_slice(src.data());
        m
    }

    /// Return a matrix's buffer to the pool.
    pub(crate) fn give_back(m: Matrix) {
        let buf = m.into_vec();
        if buf.is_empty() {
            return;
        }
        POOL.with(|p| {
            let mut pool = p.borrow_mut();
            let bucket = pool.entry(buf.len()).or_default();
            if bucket.len() < MAX_PER_LEN {
                bucket.push(buf);
            }
        });
    }

    /// Flush this thread's reuse tally to the observability counter.
    pub(crate) fn flush_reuse_counter() {
        let n = REUSED.with(Cell::take);
        structmine_store::obs::counter_add("nn.arena_reuse_threads", n);
    }
}

/// Handle to a node in a [`Graph`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NodeId(usize);

#[derive(Debug)]
enum Op {
    Leaf,
    Add(NodeId, NodeId),
    AddRowBroadcast(NodeId, NodeId),
    Scale(NodeId, f32),
    Mul(NodeId, NodeId),
    MatMul(NodeId, NodeId),
    /// `a × bᵀ` without materializing the transpose.
    MatMulT(NodeId, NodeId),
    /// `a × W` where `W` arrived as pre-packed panels rather than a tape
    /// node (frozen inference weights; see [`PackedMatrix`]). The weight
    /// is not on the tape, so no gradient can flow to it — differentiating
    /// through this op is a programming error and panics.
    MatMulPrepacked(NodeId),
    /// Fast-tier layer norm: no cached normalized rows or inv-std (those
    /// exist only for the backward pass, which Fast tapes never run).
    LayerNormFast(NodeId),
    Transpose(NodeId),
    Relu(NodeId),
    /// (input, cached per-element tanh of the GELU inner term — reused in
    /// the backward pass so the tanh is computed exactly once)
    Gelu(NodeId, Matrix),
    /// Fast-tier fused GELU forward: no cached-tanh matrix (inference
    /// graphs never run backward, so the bookkeeping is pure overhead).
    /// Differentiating through it is a programming error and panics.
    GeluFast(NodeId),
    Tanh(NodeId),
    Sigmoid(NodeId),
    RowSoftmax(NodeId),
    /// Fused `row_softmax(s * a)` — the attention score path (scale factor
    /// kept for the backward chain rule).
    ScaledRowSoftmax(NodeId, f32),
    /// (input, gain, bias, cached normalized rows, cached inv-std per row)
    LayerNorm(NodeId, NodeId, NodeId, Matrix, Vec<f32>),
    SelectRows(NodeId, Vec<usize>),
    /// Contiguous column slice `[start, start + cols)` of the input
    /// (attention-head views of a fused QKV product).
    SelectCols(NodeId, usize),
    MeanRows(NodeId),
    ConcatCols(Vec<NodeId>),
    /// (logits, soft target distribution, cached probabilities)
    SoftmaxCe(NodeId, Matrix, Matrix),
    /// (logits, 0/1-or-soft targets, cached sigmoid values)
    SigmoidBce(NodeId, Matrix, Matrix),
}

struct Node {
    value: Matrix,
    grad: Option<Matrix>,
    op: Op,
}

/// A tape of matrix operations supporting reverse-mode differentiation.
///
/// The tape carries a [`Precision`] chosen at construction: Exact tapes
/// (the default, and the only kind training ever builds) use libm
/// transcendentals and the bit-reproducible matmul kernels; Fast tapes
/// swap in the [`structmine_linalg::fastmath`] approximations, the fused
/// no-cache GELU, and the branch-free matmul path. Backward passes are
/// only supported on Exact tapes.
#[derive(Default)]
pub struct Graph {
    nodes: Vec<Node>,
    precision: Precision,
}

impl Graph {
    /// An empty tape at Exact precision.
    pub fn new() -> Self {
        Graph::with_precision(Precision::Exact)
    }

    /// An empty tape at the given precision tier. Training code must pass
    /// [`Precision::Exact`]; Fast tapes are inference-only.
    pub fn with_precision(precision: Precision) -> Self {
        Graph {
            nodes: Vec::new(),
            precision,
        }
    }

    /// The precision tier this tape computes at.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    fn push(&mut self, value: Matrix, op: Op) -> NodeId {
        self.nodes.push(Node {
            value,
            grad: None,
            op,
        });
        NodeId(self.nodes.len() - 1)
    }

    /// Insert a leaf (input or parameter copy).
    pub fn leaf(&mut self, value: Matrix) -> NodeId {
        self.push(value, Op::Leaf)
    }

    /// Insert a leaf holding a pooled copy of `value` — the arena-friendly
    /// way to bind a parameter without a fresh allocation per step.
    pub fn leaf_copied(&mut self, value: &Matrix) -> NodeId {
        let v = arena::take_copy(value);
        self.push(v, Op::Leaf)
    }

    /// Insert a leaf holding rows of `table` gathered by index — the
    /// inference-path embedding lookup, which skips binding the full table
    /// into the tape (no gradient flows back to a leaf anyway).
    pub fn leaf_gather(&mut self, table: &Matrix, indices: &[usize]) -> NodeId {
        let mut v = arena::take_uninit(indices.len(), table.cols());
        for (out, &src) in indices.iter().enumerate() {
            v.row_mut(out).copy_from_slice(table.row(src));
        }
        self.push(v, Op::Leaf)
    }

    /// The forward value of a node.
    pub fn value(&self, id: NodeId) -> &Matrix {
        &self.nodes[id.0].value
    }

    /// Move a node's value out of the tape (leaving an empty matrix), so
    /// callers that only need one output skip a full copy.
    pub fn take_value(&mut self, id: NodeId) -> Matrix {
        std::mem::replace(&mut self.nodes[id.0].value, Matrix::zeros(0, 0))
    }

    /// The accumulated gradient of a node (zeros if it never received one).
    pub fn grad(&self, id: NodeId) -> Matrix {
        match &self.nodes[id.0].grad {
            Some(g) => g.clone(),
            None => {
                let v = &self.nodes[id.0].value;
                Matrix::zeros(v.rows(), v.cols())
            }
        }
    }

    /// Borrow the accumulated gradient of a node, if any.
    pub fn grad_ref(&self, id: NodeId) -> Option<&Matrix> {
        self.nodes[id.0].grad.as_ref()
    }

    /// Number of nodes on the tape.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Clear the tape for the next training step, recycling every node's
    /// value, gradient, and cached-activation storage through the arena.
    /// Equivalent to dropping the graph and building a new one, but keeps
    /// the node vector's capacity.
    pub fn reset(&mut self) {
        for node in self.nodes.drain(..) {
            recycle_node(node);
        }
        arena::flush_reuse_counter();
    }

    /// [`Self::reset`], then switch the tape to `precision` — for scratch
    /// tapes held across forward passes that serve at varying tiers.
    pub fn reset_to(&mut self, precision: Precision) {
        self.reset();
        self.precision = precision;
    }

    /// Allocated node-slot capacity (survives [`Self::reset`]); a non-zero
    /// value on an empty tape means this graph is being reused as scratch.
    pub fn node_capacity(&self) -> usize {
        self.nodes.capacity()
    }

    // --- forward ops -------------------------------------------------------

    /// Element-wise `a + b`.
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (va, vb) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
        assert_eq!(va.shape(), vb.shape(), "add shape mismatch");
        let mut v = arena::take_uninit(va.rows(), va.cols());
        for (o, (x, y)) in v.data_mut().iter_mut().zip(va.data().iter().zip(vb.data())) {
            *o = x + y;
        }
        self.push(v, Op::Add(a, b))
    }

    /// Add a `1 x d` row vector to every row of `a`.
    pub fn add_row_broadcast(&mut self, a: NodeId, bias: NodeId) -> NodeId {
        let va = &self.nodes[a.0].value;
        let b = &self.nodes[bias.0].value;
        assert_eq!(b.rows(), 1, "bias must be a row vector");
        assert_eq!(b.cols(), va.cols(), "broadcast length mismatch");
        let mut v = arena::take_uninit(va.rows(), va.cols());
        for i in 0..va.rows() {
            for ((o, &x), &y) in v.row_mut(i).iter_mut().zip(va.row(i)).zip(b.row(0)) {
                *o = x + y;
            }
        }
        self.push(v, Op::AddRowBroadcast(a, bias))
    }

    /// `a * s`.
    pub fn scale(&mut self, a: NodeId, s: f32) -> NodeId {
        let va = &self.nodes[a.0].value;
        let mut v = arena::take_uninit(va.rows(), va.cols());
        for (o, &x) in v.data_mut().iter_mut().zip(va.data()) {
            *o = x * s;
        }
        self.push(v, Op::Scale(a, s))
    }

    /// Element-wise `a ⊙ b`.
    pub fn mul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (va, vb) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
        assert_eq!(va.shape(), vb.shape(), "mul shape mismatch");
        let mut v = arena::take_uninit(va.rows(), va.cols());
        for (o, (x, y)) in v.data_mut().iter_mut().zip(va.data().iter().zip(vb.data())) {
            *o = x * y;
        }
        self.push(v, Op::Mul(a, b))
    }

    /// Matrix product `a × b`. Fast tapes use the branch-free kernel
    /// (no `a == 0.0` skip, no bit-compat with Exact); Exact tapes keep
    /// the bit-reproducible kernel.
    pub fn matmul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (va, vb) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
        let mut v = arena::take_uninit(va.rows(), vb.cols());
        match self.precision {
            Precision::Exact => va.matmul_into(vb, &mut v),
            Precision::Fast => va.matmul_into_fast(vb, &mut v),
        }
        self.push(v, Op::MatMul(a, b))
    }

    /// Matrix product `a × bᵀ` without materializing the transpose —
    /// replaces `matmul(a, transpose(b))` on the attention and tied-
    /// projection paths (same element-wise summation order, two fewer
    /// tape nodes, no transposed copy).
    pub fn matmul_t(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (va, vb) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
        let mut v = arena::take_uninit(va.rows(), vb.rows());
        match self.precision {
            Precision::Exact => va.matmul_t_into(vb, &mut v),
            Precision::Fast => va.matmul_t_into_fast(vb, &mut v),
        }
        self.push(v, Op::MatMulT(a, b))
    }

    /// Matrix product `a × W` through pre-packed weight panels — the
    /// serving hot path's replacement for binding `W` as a leaf and calling
    /// [`Self::matmul`]/[`Self::matmul_t`] (the pack's orientation decides
    /// which product this computes). Skips both the per-call weight copy
    /// into the tape and the per-call panel pack; per-element arithmetic is
    /// identical to the unpacked op at the same precision, so Exact tapes
    /// stay bitwise reproducible. Inference-only: the weight is not a tape
    /// node, so backward through this op panics.
    pub fn matmul_prepacked(&mut self, a: NodeId, packed: &PackedMatrix) -> NodeId {
        let va = &self.nodes[a.0].value;
        let mut v = arena::take_uninit(va.rows(), packed.n());
        match self.precision {
            Precision::Exact => va.matmul_prepacked_into(packed, &mut v),
            Precision::Fast => va.matmul_prepacked_fast_into(packed, &mut v),
        }
        self.push(v, Op::MatMulPrepacked(a))
    }

    /// Transpose.
    pub fn transpose(&mut self, a: NodeId) -> NodeId {
        let va = &self.nodes[a.0].value;
        let mut v = arena::take_uninit(va.cols(), va.rows());
        va.transpose_into(&mut v);
        self.push(v, Op::Transpose(a))
    }

    /// ReLU.
    pub fn relu(&mut self, a: NodeId) -> NodeId {
        let v = self.map_unary(a, |x| x.max(0.0));
        self.push(v, Op::Relu(a))
    }

    /// GELU (tanh approximation). The inner tanh of each element is cached
    /// on the op and reused by the backward pass, halving the number of
    /// tanh evaluations per training step without changing any bit of the
    /// result.
    pub fn gelu(&mut self, a: NodeId) -> NodeId {
        if self.precision == Precision::Fast {
            // Fused fast forward: polynomial tanh, no cached matrix to
            // fill (inference tapes never differentiate, so caching the
            // inner tanh is one full matrix write of pure overhead).
            let va = &self.nodes[a.0].value;
            let mut v = arena::take_uninit(va.rows(), va.cols());
            for (o, &x) in v.data_mut().iter_mut().zip(va.data()) {
                let tanh = fastmath::fast_tanh(GELU_C * (x + 0.044715 * x * x * x));
                *o = 0.5 * x * (1.0 + tanh);
            }
            return self.push(v, Op::GeluFast(a));
        }
        let va = &self.nodes[a.0].value;
        let mut v = arena::take_uninit(va.rows(), va.cols());
        let mut cached_t = arena::take_uninit(va.rows(), va.cols());
        for ((o, t), &x) in v
            .data_mut()
            .iter_mut()
            .zip(cached_t.data_mut().iter_mut())
            .zip(va.data())
        {
            let tanh = (GELU_C * (x + 0.044715 * x * x * x)).tanh();
            *t = tanh;
            *o = 0.5 * x * (1.0 + tanh);
        }
        self.push(v, Op::Gelu(a, cached_t))
    }

    /// tanh.
    pub fn tanh(&mut self, a: NodeId) -> NodeId {
        let v = match self.precision {
            Precision::Exact => self.map_unary(a, f32::tanh),
            Precision::Fast => self.map_unary(a, fastmath::fast_tanh),
        };
        self.push(v, Op::Tanh(a))
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: NodeId) -> NodeId {
        let v = match self.precision {
            Precision::Exact => self.map_unary(a, sigmoid),
            Precision::Fast => self.map_unary(a, fast_sigmoid),
        };
        self.push(v, Op::Sigmoid(a))
    }

    /// Softmax independently over each row.
    pub fn row_softmax(&mut self, a: NodeId) -> NodeId {
        let va = &self.nodes[a.0].value;
        let mut v = arena::take_copy(va);
        for i in 0..v.rows() {
            self.softmax_row(v.row_mut(i));
        }
        self.push(v, Op::RowSoftmax(a))
    }

    /// The per-row softmax primitive at this tape's precision.
    fn softmax_row(&self, row: &mut [f32]) {
        match self.precision {
            Precision::Exact => structmine_linalg::stats::softmax_inplace(row),
            Precision::Fast => structmine_linalg::stats::softmax_inplace_fast(row),
        }
    }

    /// Fused `row_softmax(s * a)` — one node instead of a Scale node plus a
    /// RowSoftmax node, with the scaled scores never hitting the tape. The
    /// element-wise arithmetic (multiply, then softmax) is identical to the
    /// unfused chain, so outputs match it bitwise.
    pub fn scaled_row_softmax(&mut self, a: NodeId, s: f32) -> NodeId {
        let va = &self.nodes[a.0].value;
        let mut v = arena::take_uninit(va.rows(), va.cols());
        for (o, &x) in v.data_mut().iter_mut().zip(va.data()) {
            *o = x * s;
        }
        for i in 0..v.rows() {
            self.softmax_row(v.row_mut(i));
        }
        self.push(v, Op::ScaledRowSoftmax(a, s))
    }

    /// Layer normalization over each row, with learned gain and bias
    /// (`1 x d` leaves).
    pub fn layer_norm(&mut self, a: NodeId, gain: NodeId, bias: NodeId) -> NodeId {
        const EPS: f32 = 1e-5;
        let va = &self.nodes[a.0].value;
        let g = &self.nodes[gain.0].value;
        let b = &self.nodes[bias.0].value;
        assert_eq!(g.rows(), 1);
        assert_eq!(b.rows(), 1);
        if self.precision == Precision::Fast {
            // Fused fast row pass: single sweep per row, no normalized-rows
            // matrix or inv-std cache (backward-only bookkeeping — one full
            // matrix write of pure overhead on an inference tape).
            let mut v = arena::take_copy(va);
            for i in 0..v.rows() {
                simd::layer_norm_row_fast(v.row_mut(i), g.row(0), b.row(0), EPS);
            }
            return self.push(v, Op::LayerNormFast(a));
        }
        let (n, d) = va.shape();
        let mut normalized = arena::take_uninit(n, d);
        let mut inv_std = Vec::with_capacity(n);
        let mut out = arena::take_uninit(n, d);
        for i in 0..n {
            let row = va.row(i);
            let mean = row.iter().sum::<f32>() / d as f32;
            let var = row.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / d as f32;
            let istd = 1.0 / (var + EPS).sqrt();
            inv_std.push(istd);
            let norm_row = normalized.row_mut(i);
            for (nr, &x) in norm_row.iter_mut().zip(row) {
                *nr = (x - mean) * istd;
            }
            let norm_row = normalized.row(i);
            for (((o, &xhat), &gj), &bj) in out
                .row_mut(i)
                .iter_mut()
                .zip(norm_row)
                .zip(g.row(0))
                .zip(b.row(0))
            {
                *o = xhat * gj + bj;
            }
        }
        self.push(out, Op::LayerNorm(a, gain, bias, normalized, inv_std))
    }

    /// Gather rows of `a` by index (embedding lookup; duplicates allowed).
    pub fn select_rows(&mut self, a: NodeId, indices: &[usize]) -> NodeId {
        let va = &self.nodes[a.0].value;
        let mut v = arena::take_uninit(indices.len(), va.cols());
        for (out, &src) in indices.iter().enumerate() {
            v.row_mut(out).copy_from_slice(va.row(src));
        }
        self.push(v, Op::SelectRows(a, indices.to_vec()))
    }

    /// Slice a contiguous range of `width` columns of `a` starting at
    /// `start` (per-head views of a fused QKV projection).
    pub fn select_cols(&mut self, a: NodeId, start: usize, width: usize) -> NodeId {
        let va = &self.nodes[a.0].value;
        assert!(
            start + width <= va.cols(),
            "select_cols out of range: {}+{} > {}",
            start,
            width,
            va.cols()
        );
        let rows = va.rows();
        let mut v = arena::take_uninit(rows, width);
        for i in 0..rows {
            v.row_mut(i)
                .copy_from_slice(&va.row(i)[start..start + width]);
        }
        self.push(v, Op::SelectCols(a, start))
    }

    /// Mean over rows, producing a `1 x d` vector.
    pub fn mean_rows(&mut self, a: NodeId) -> NodeId {
        let mean = self.nodes[a.0].value.col_mean();
        let d = mean.len();
        self.push(Matrix::from_vec(1, d, mean), Op::MeanRows(a))
    }

    /// Concatenate matrices with equal row counts along columns.
    pub fn concat_cols(&mut self, parts: &[NodeId]) -> NodeId {
        assert!(!parts.is_empty());
        let n = self.nodes[parts[0].0].value.rows();
        let total: usize = parts.iter().map(|p| self.nodes[p.0].value.cols()).sum();
        let mut v = arena::take_uninit(n, total);
        let mut off = 0;
        for &p in parts {
            let vp = &self.nodes[p.0].value;
            assert_eq!(vp.rows(), n, "concat_cols row mismatch");
            for i in 0..n {
                v.row_mut(i)[off..off + vp.cols()].copy_from_slice(vp.row(i));
            }
            off += vp.cols();
        }
        self.push(v, Op::ConcatCols(parts.to_vec()))
    }

    /// Fused softmax + cross-entropy against soft target rows. Returns a
    /// `1 x 1` scalar: `-(1/n) Σ_i Σ_c T_ic log P_ic`.
    pub fn softmax_cross_entropy(&mut self, logits: NodeId, targets: &Matrix) -> NodeId {
        let vl = &self.nodes[logits.0].value;
        assert_eq!(vl.shape(), targets.shape(), "softmax_ce shape mismatch");
        let mut probs = arena::take_copy(vl);
        let mut loss = 0.0f32;
        for i in 0..probs.rows() {
            structmine_linalg::stats::softmax_inplace(probs.row_mut(i));
            for (p, t) in probs.row(i).iter().zip(targets.row(i)) {
                if *t > 0.0 {
                    loss -= t * p.max(1e-12).ln();
                }
            }
        }
        loss /= probs.rows().max(1) as f32;
        let v = Matrix::from_vec(1, 1, vec![loss]);
        self.push(v, Op::SoftmaxCe(logits, arena::take_copy(targets), probs))
    }

    /// Fused sigmoid + binary cross-entropy, mean over all entries.
    pub fn sigmoid_bce(&mut self, logits: NodeId, targets: &Matrix) -> NodeId {
        let vl = &self.nodes[logits.0].value;
        assert_eq!(vl.shape(), targets.shape(), "sigmoid_bce shape mismatch");
        let mut sig = arena::take_copy(vl);
        let mut loss = 0.0f32;
        for (s, t) in sig.data_mut().iter_mut().zip(targets.data()) {
            *s = sigmoid(*s);
            let p = s.clamp(1e-7, 1.0 - 1e-7);
            loss -= t * p.ln() + (1.0 - t) * (1.0 - p).ln();
        }
        loss /= (vl.rows() * vl.cols()).max(1) as f32;
        let v = Matrix::from_vec(1, 1, vec![loss]);
        self.push(v, Op::SigmoidBce(logits, arena::take_copy(targets), sig))
    }

    fn map_unary(&self, a: NodeId, f: impl Fn(f32) -> f32) -> Matrix {
        let va = &self.nodes[a.0].value;
        let mut v = arena::take_uninit(va.rows(), va.cols());
        for (o, &x) in v.data_mut().iter_mut().zip(va.data()) {
            *o = f(x);
        }
        v
    }

    // --- backward ----------------------------------------------------------

    /// Run backpropagation from `loss` (must be `1 x 1`), seeding its
    /// gradient with 1. Gradients accumulate, so several backward calls on
    /// one tape sum their gradients (useful for multi-task losses).
    pub fn backward(&mut self, loss: NodeId) {
        assert_eq!(
            self.nodes[loss.0].value.shape(),
            (1, 1),
            "loss must be scalar"
        );
        accumulate(
            &mut self.nodes[loss.0].grad,
            Matrix::from_vec(1, 1, vec![1.0]),
        );
        for i in (0..=loss.0).rev() {
            // Move the gradient out instead of cloning it; it is restored
            // right after the contributions are computed.
            let Some(grad_out) = self.nodes[i].grad.take() else {
                continue;
            };
            // Temporarily take the op so parent values can be read while the
            // contributions are computed, then restore it and accumulate.
            let op = std::mem::replace(&mut self.nodes[i].op, Op::Leaf);
            let contributions = self.backward_op(&op, i, &grad_out);
            self.nodes[i].op = op;
            self.nodes[i].grad = Some(grad_out);
            for (id, g) in contributions {
                self.acc(id, g);
            }
        }
    }

    /// Gradient contributions of one node to its parents. Every returned
    /// matrix comes from the arena; `acc` either moves it into an empty
    /// gradient slot or recycles it after summing.
    fn backward_op(&self, op: &Op, node: usize, grad_out: &Matrix) -> Vec<(NodeId, Matrix)> {
        match op {
            Op::Leaf => Vec::new(),
            Op::Add(a, b) => vec![
                (*a, arena::take_copy(grad_out)),
                (*b, arena::take_copy(grad_out)),
            ],
            Op::AddRowBroadcast(a, bias) => {
                let mut bias_grad = arena::take_zeroed(1, grad_out.cols());
                for r in grad_out.iter_rows() {
                    for (bg, &g) in bias_grad.row_mut(0).iter_mut().zip(r) {
                        *bg += g;
                    }
                }
                vec![(*a, arena::take_copy(grad_out)), (*bias, bias_grad)]
            }
            Op::Scale(a, s) => {
                let mut g = arena::take_copy(grad_out);
                g.scale_in_place(*s);
                vec![(*a, g)]
            }
            Op::Mul(a, b) => {
                let ga = hadamard(grad_out, &self.nodes[b.0].value);
                let gb = hadamard(grad_out, &self.nodes[a.0].value);
                vec![(*a, ga), (*b, gb)]
            }
            Op::MatMul(a, b) => {
                let (va, vb) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
                let mut ga = arena::take_uninit(grad_out.rows(), vb.rows());
                grad_out.matmul_t_into(vb, &mut ga);
                let mut at = arena::take_uninit(va.cols(), va.rows());
                va.transpose_into(&mut at);
                let mut gb = arena::take_uninit(at.rows(), grad_out.cols());
                at.matmul_into(grad_out, &mut gb);
                arena::give_back(at);
                vec![(*a, ga), (*b, gb)]
            }
            Op::MatMulT(a, b) => {
                // out = A·Bᵀ, so dA = G·B and dB = Gᵀ·A.
                let (va, vb) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
                let mut ga = arena::take_uninit(grad_out.rows(), vb.cols());
                grad_out.matmul_into(vb, &mut ga);
                let mut gt = arena::take_uninit(grad_out.cols(), grad_out.rows());
                grad_out.transpose_into(&mut gt);
                let mut gb = arena::take_uninit(gt.rows(), va.cols());
                gt.matmul_into(va, &mut gb);
                arena::give_back(gt);
                vec![(*a, ga), (*b, gb)]
            }
            Op::Transpose(a) => {
                let mut g = arena::take_uninit(grad_out.cols(), grad_out.rows());
                grad_out.transpose_into(&mut g);
                vec![(*a, g)]
            }
            Op::Relu(a) => {
                let g = masked_grad(grad_out, &self.nodes[a.0].value, |x| {
                    if x > 0.0 {
                        1.0
                    } else {
                        0.0
                    }
                });
                vec![(*a, g)]
            }
            Op::Gelu(a, cached_t) => {
                // Same formula as recomputing gelu_grad from scratch, with
                // the cached tanh substituted — bitwise identical, one tanh
                // per element cheaper.
                let x = &self.nodes[a.0].value;
                let mut g = arena::take_uninit(grad_out.rows(), grad_out.cols());
                for ((o, &go), (&xv, &t)) in g
                    .data_mut()
                    .iter_mut()
                    .zip(grad_out.data())
                    .zip(x.data().iter().zip(cached_t.data()))
                {
                    let dinner = GELU_C * (1.0 + 3.0 * 0.044715 * xv * xv);
                    *o = go * (0.5 * (1.0 + t) + 0.5 * xv * (1.0 - t * t) * dinner);
                }
                vec![(*a, g)]
            }
            Op::GeluFast(a) => {
                panic!(
                    "GeluFast (input node {}) is inference-only: \
                     Fast-precision tapes do not support backward",
                    a.0
                )
            }
            Op::MatMulPrepacked(a) => {
                panic!(
                    "MatMulPrepacked (input node {}) is inference-only: \
                     the pre-packed weight is not on the tape, so no \
                     gradient can flow through it",
                    a.0
                )
            }
            Op::LayerNormFast(a) => {
                panic!(
                    "LayerNormFast (input node {}) is inference-only: \
                     Fast-precision tapes do not support backward",
                    a.0
                )
            }
            Op::Tanh(a) => {
                vec![(
                    *a,
                    masked_grad(grad_out, &self.nodes[node].value, |y| 1.0 - y * y),
                )]
            }
            Op::Sigmoid(a) => {
                vec![(
                    *a,
                    masked_grad(grad_out, &self.nodes[node].value, |y| y * (1.0 - y)),
                )]
            }
            Op::RowSoftmax(a) => vec![(*a, self.softmax_backward(node, grad_out, 1.0))],
            Op::ScaledRowSoftmax(a, s) => {
                // d/dx softmax(s·x) = s · softmax_grad — the same two
                // factors the unfused Scale∘RowSoftmax chain multiplies, in
                // the same association.
                vec![(*a, self.softmax_backward(node, grad_out, *s))]
            }
            Op::LayerNorm(a, gain, bias, xhat, inv_std) => {
                let (n, d) = grad_out.shape();
                let g_row = self.nodes[gain.0].value.row(0);
                let mut ga = arena::take_uninit(n, d);
                let mut ggain = arena::take_zeroed(1, d);
                let mut gbias = arena::take_zeroed(1, d);
                let mut dxhat = vec![0.0f32; d];
                for (r, &istd) in inv_std.iter().enumerate() {
                    let go = grad_out.row(r);
                    let xh = xhat.row(r);
                    for ((dx, &g), &gn) in dxhat.iter_mut().zip(go).zip(g_row) {
                        *dx = g * gn;
                    }
                    let mean_dx = dxhat.iter().sum::<f32>() / d as f32;
                    let mean_dx_xh =
                        dxhat.iter().zip(xh).map(|(dx, x)| dx * x).sum::<f32>() / d as f32;
                    for c in 0..d {
                        ga.set(r, c, istd * (dxhat[c] - mean_dx - xh[c] * mean_dx_xh));
                        ggain.row_mut(0)[c] += go[c] * xh[c];
                        gbias.row_mut(0)[c] += go[c];
                    }
                }
                vec![(*a, ga), (*gain, ggain), (*bias, gbias)]
            }
            Op::SelectRows(a, indices) => {
                let src = &self.nodes[a.0].value;
                let mut g = arena::take_zeroed(src.rows(), src.cols());
                for (out_row, &src_row) in indices.iter().enumerate() {
                    for (t, &s) in g.row_mut(src_row).iter_mut().zip(grad_out.row(out_row)) {
                        *t += s;
                    }
                }
                vec![(*a, g)]
            }
            Op::SelectCols(a, start) => {
                let src = &self.nodes[a.0].value;
                let mut g = arena::take_zeroed(src.rows(), src.cols());
                let w = grad_out.cols();
                for r in 0..grad_out.rows() {
                    g.row_mut(r)[*start..*start + w].copy_from_slice(grad_out.row(r));
                }
                vec![(*a, g)]
            }
            Op::MeanRows(a) => {
                let src = &self.nodes[a.0].value;
                let n = src.rows();
                let inv = 1.0 / n as f32;
                let mut g = arena::take_uninit(n, src.cols());
                for r in 0..n {
                    for (t, &s) in g.row_mut(r).iter_mut().zip(grad_out.row(0)) {
                        *t = s * inv;
                    }
                }
                vec![(*a, g)]
            }
            Op::ConcatCols(parts) => {
                let mut out = Vec::with_capacity(parts.len());
                let mut off = 0;
                for &p in parts {
                    let cols = self.nodes[p.0].value.cols();
                    let rows = grad_out.rows();
                    let mut g = arena::take_uninit(rows, cols);
                    for r in 0..rows {
                        g.row_mut(r)
                            .copy_from_slice(&grad_out.row(r)[off..off + cols]);
                    }
                    off += cols;
                    out.push((p, g));
                }
                out
            }
            Op::SoftmaxCe(logits, targets, probs) => {
                let scale = grad_out.get(0, 0) / probs.rows().max(1) as f32;
                vec![(*logits, scaled_diff(probs, targets, scale))]
            }
            Op::SigmoidBce(logits, targets, sig) => {
                let n = (sig.rows() * sig.cols()).max(1) as f32;
                let scale = grad_out.get(0, 0) / n;
                vec![(*logits, scaled_diff(sig, targets, scale))]
            }
        }
    }

    /// Shared softmax Jacobian-vector product: `scale * s ⊙ (g - (g·s))`
    /// rowwise, where `s` is this node's softmax output.
    fn softmax_backward(&self, node: usize, grad_out: &Matrix, scale: f32) -> Matrix {
        let s = &self.nodes[node].value;
        let mut g = arena::take_uninit(s.rows(), s.cols());
        for r in 0..s.rows() {
            let srow = s.row(r);
            let dot: f32 = grad_out.row(r).iter().zip(srow).map(|(d, v)| d * v).sum();
            for (c, &sv) in srow.iter().enumerate() {
                g.set(r, c, (sv * (grad_out.get(r, c) - dot)) * scale);
            }
        }
        g
    }

    fn acc(&mut self, id: NodeId, grad: Matrix) {
        accumulate(&mut self.nodes[id.0].grad, grad);
    }
}

impl Drop for Graph {
    /// Recycle every node's storage into the thread-local arena and flush
    /// the reuse counter.
    fn drop(&mut self) {
        for node in self.nodes.drain(..) {
            recycle_node(node);
        }
        arena::flush_reuse_counter();
    }
}

fn recycle_node(node: Node) {
    arena::give_back(node.value);
    if let Some(g) = node.grad {
        arena::give_back(g);
    }
    match node.op {
        Op::Gelu(_, t) => arena::give_back(t),
        Op::LayerNorm(_, _, _, xhat, _) => arena::give_back(xhat),
        Op::SoftmaxCe(_, targets, probs) | Op::SigmoidBce(_, targets, probs) => {
            arena::give_back(targets);
            arena::give_back(probs);
        }
        _ => {}
    }
}

/// Sum `grad` into the slot, moving it in when the slot is empty and
/// recycling it otherwise.
fn accumulate(slot: &mut Option<Matrix>, grad: Matrix) {
    match slot {
        Some(g) => {
            g.axpy(1.0, &grad);
            arena::give_back(grad);
        }
        None => *slot = Some(grad),
    }
}

fn hadamard(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = arena::take_uninit(a.rows(), a.cols());
    for (o, (x, y)) in out.data_mut().iter_mut().zip(a.data().iter().zip(b.data())) {
        *o = x * y;
    }
    out
}

/// grad_out ⊙ f(reference) elementwise.
fn masked_grad(grad_out: &Matrix, reference: &Matrix, f: impl Fn(f32) -> f32) -> Matrix {
    let mut out = arena::take_uninit(grad_out.rows(), grad_out.cols());
    for (o, (&g, &r)) in out
        .data_mut()
        .iter_mut()
        .zip(grad_out.data().iter().zip(reference.data()))
    {
        *o = g * f(r);
    }
    out
}

/// `(a - b) * scale` elementwise, pooled — the shared form of both fused
/// loss gradients (same association as the unfused `sub` then `scale`).
fn scaled_diff(a: &Matrix, b: &Matrix, scale: f32) -> Matrix {
    let mut out = arena::take_uninit(a.rows(), a.cols());
    for (o, (x, y)) in out.data_mut().iter_mut().zip(a.data().iter().zip(b.data())) {
        *o = (x - y) * scale;
    }
    out
}

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Fast-tier sigmoid: same rational form with [`fastmath::fast_exp`]
/// (rel error ≤ 1e-5, so the sigmoid error is ≤ ~2.5e-6 absolute).
fn fast_sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + fastmath::fast_exp(-x))
}

const GELU_C: f32 = 0.797_884_6; // sqrt(2/pi)

#[cfg(test)]
mod tests {
    use super::*;
    use structmine_linalg::rng;

    /// Numerically check d(loss)/d(leaf) for a builder-defined graph.
    fn check_gradient(build: impl Fn(&mut Graph, NodeId) -> NodeId, leaf_value: &Matrix, tol: f32) {
        let mut g = Graph::new();
        let x = g.leaf(leaf_value.clone());
        let loss = build(&mut g, x);
        g.backward(loss);
        let analytic = g.grad(x);

        let eps = 1e-2f32;
        for i in 0..leaf_value.rows() {
            for j in 0..leaf_value.cols() {
                let mut plus = leaf_value.clone();
                plus.set(i, j, plus.get(i, j) + eps);
                let mut minus = leaf_value.clone();
                minus.set(i, j, minus.get(i, j) - eps);
                let mut gp = Graph::new();
                let xp = gp.leaf(plus);
                let lp = build(&mut gp, xp);
                let mut gm = Graph::new();
                let xm = gm.leaf(minus);
                let lm = build(&mut gm, xm);
                let numeric = (gp.value(lp).get(0, 0) - gm.value(lm).get(0, 0)) / (2.0 * eps);
                let a = analytic.get(i, j);
                assert!(
                    (a - numeric).abs() < tol * (1.0 + numeric.abs()),
                    "grad mismatch at ({i},{j}): analytic {a}, numeric {numeric}"
                );
            }
        }
    }

    fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut r = rng::seeded(seed);
        let mut m = Matrix::zeros(rows, cols);
        rng::fill_gaussian(&mut r, m.data_mut(), 0.5);
        m
    }

    /// Reduce any matrix to a scalar by summing entries (via matmul with ones).
    fn sum_to_scalar(g: &mut Graph, x: NodeId) -> NodeId {
        let (r, c) = g.value(x).shape();
        let ones_r = g.leaf(Matrix::filled(1, r, 1.0));
        let ones_c = g.leaf(Matrix::filled(c, 1, 1.0));
        let rowsum = g.matmul(ones_r, x);
        g.matmul(rowsum, ones_c)
    }

    #[test]
    fn matmul_gradient_matches_finite_difference() {
        let w = random_matrix(4, 3, 1);
        check_gradient(
            |g, x| {
                let w = g.leaf(w.clone());
                let y = g.matmul(x, w);
                let y = g.tanh(y);
                sum_to_scalar(g, y)
            },
            &random_matrix(2, 4, 2),
            1e-2,
        );
    }

    #[test]
    fn matmul_t_gradient_matches_finite_difference() {
        let w = random_matrix(3, 4, 5);
        check_gradient(
            |g, x| {
                let w = g.leaf(w.clone());
                let y = g.matmul_t(x, w);
                let y = g.tanh(y);
                sum_to_scalar(g, y)
            },
            &random_matrix(2, 4, 6),
            1e-2,
        );
    }

    #[test]
    fn matmul_t_rhs_gradient_matches_finite_difference() {
        // Same check with the transposed operand as the differentiated leaf.
        let a = random_matrix(2, 4, 7);
        check_gradient(
            |g, x| {
                let a = g.leaf(a.clone());
                let y = g.matmul_t(a, x);
                let y = g.tanh(y);
                sum_to_scalar(g, y)
            },
            &random_matrix(3, 4, 8),
            1e-2,
        );
    }

    #[test]
    fn matmul_t_matches_matmul_of_transpose_bitwise() {
        let a = random_matrix(5, 7, 9);
        let b = random_matrix(6, 7, 10);
        let mut g1 = Graph::new();
        let (an, bn) = (g1.leaf(a.clone()), g1.leaf(b.clone()));
        let fused = g1.matmul_t(an, bn);
        let mut g2 = Graph::new();
        let (an2, bn2) = (g2.leaf(a), g2.leaf(b));
        let bt = g2.transpose(bn2);
        let unfused = g2.matmul(an2, bt);
        assert_eq!(g1.value(fused).data(), g2.value(unfused).data());
    }

    #[test]
    fn activations_gradients_match() {
        for act in 0..4 {
            check_gradient(
                |g, x| {
                    let y = match act {
                        0 => g.relu(x),
                        1 => g.gelu(x),
                        2 => g.tanh(x),
                        _ => g.sigmoid(x),
                    };
                    sum_to_scalar(g, y)
                },
                &random_matrix(3, 3, 30 + act),
                2e-2,
            );
        }
    }

    #[test]
    fn row_softmax_gradient_matches() {
        let probe = random_matrix(3, 4, 20);
        check_gradient(
            |g, x| {
                let s = g.row_softmax(x);
                let p = g.leaf(probe.clone());
                let weighted = g.mul(s, p);
                sum_to_scalar(g, weighted)
            },
            &random_matrix(3, 4, 21),
            2e-2,
        );
    }

    #[test]
    fn scaled_row_softmax_gradient_matches() {
        let probe = random_matrix(3, 4, 22);
        check_gradient(
            |g, x| {
                let s = g.scaled_row_softmax(x, 0.41);
                let p = g.leaf(probe.clone());
                let weighted = g.mul(s, p);
                sum_to_scalar(g, weighted)
            },
            &random_matrix(3, 4, 23),
            2e-2,
        );
    }

    #[test]
    fn scaled_row_softmax_matches_unfused_chain_bitwise() {
        // Forward values AND backward gradients must equal the unfused
        // Scale -> RowSoftmax chain bit for bit.
        let x_val = random_matrix(4, 6, 24);
        let probe = random_matrix(4, 6, 25);
        let s = 0.707_f32;

        let mut fused = Graph::new();
        let x1 = fused.leaf(x_val.clone());
        let sm1 = fused.scaled_row_softmax(x1, s);
        let p1 = fused.leaf(probe.clone());
        let w1 = fused.mul(sm1, p1);
        let l1 = sum_to_scalar(&mut fused, w1);
        fused.backward(l1);

        let mut unfused = Graph::new();
        let x2 = unfused.leaf(x_val);
        let scaled = unfused.scale(x2, s);
        let sm2 = unfused.row_softmax(scaled);
        let p2 = unfused.leaf(probe);
        let w2 = unfused.mul(sm2, p2);
        let l2 = sum_to_scalar(&mut unfused, w2);
        unfused.backward(l2);

        assert_eq!(fused.value(sm1).data(), unfused.value(sm2).data());
        assert_eq!(fused.grad(x1).data(), unfused.grad(x2).data());
    }

    #[test]
    fn layer_norm_gradient_matches() {
        let gain = random_matrix(1, 5, 30);
        let bias = random_matrix(1, 5, 31);
        let probe = random_matrix(2, 5, 32);
        check_gradient(
            |g, x| {
                let gn = g.leaf(gain.clone());
                let bs = g.leaf(bias.clone());
                let y = g.layer_norm(x, gn, bs);
                let p = g.leaf(probe.clone());
                let w = g.mul(y, p);
                sum_to_scalar(g, w)
            },
            &random_matrix(2, 5, 33),
            3e-2,
        );
    }

    #[test]
    fn layer_norm_param_gradients_match() {
        // Also verify gain/bias gradients by treating gain as the leaf.
        let x = random_matrix(2, 4, 40);
        let bias = random_matrix(1, 4, 41);
        check_gradient(
            |g, gain| {
                let xv = g.leaf(x.clone());
                let bs = g.leaf(bias.clone());
                let y = g.layer_norm(xv, gain, bs);
                sum_to_scalar(g, y)
            },
            &random_matrix(1, 4, 42),
            2e-2,
        );
    }

    #[test]
    fn select_rows_and_mean_rows_gradients_match() {
        check_gradient(
            |g, x| {
                let sel = g.select_rows(x, &[0, 2, 2, 1]);
                let m = g.mean_rows(sel);
                let t = g.tanh(m);
                sum_to_scalar(g, t)
            },
            &random_matrix(3, 4, 50),
            2e-2,
        );
    }

    #[test]
    fn select_cols_gradient_matches_finite_difference() {
        check_gradient(
            |g, x| {
                let sel = g.select_cols(x, 1, 3);
                let t = g.tanh(sel);
                sum_to_scalar(g, t)
            },
            &random_matrix(4, 6, 55),
            2e-2,
        );
    }

    #[test]
    fn select_cols_round_trips_concat_cols_bitwise() {
        let x = random_matrix(5, 8, 56);
        let mut g = Graph::new();
        let a = g.leaf_copied(&x);
        let parts: Vec<NodeId> = (0..4).map(|h| g.select_cols(a, h * 2, 2)).collect();
        let back = g.concat_cols(&parts);
        assert_eq!(g.value(back).data(), x.data());
    }

    #[test]
    fn concat_and_broadcast_gradients_match() {
        let bias = random_matrix(1, 6, 60);
        check_gradient(
            |g, x| {
                let cat = g.concat_cols(&[x, x]);
                let b = g.leaf(bias.clone());
                let y = g.add_row_broadcast(cat, b);
                let y = g.sigmoid(y);
                sum_to_scalar(g, y)
            },
            &random_matrix(2, 3, 61),
            2e-2,
        );
    }

    #[test]
    fn softmax_ce_gradient_matches() {
        let mut targets = Matrix::zeros(3, 4);
        targets.set(0, 1, 1.0);
        targets.set(1, 0, 0.5);
        targets.set(1, 3, 0.5);
        targets.set(2, 2, 1.0);
        check_gradient(
            |g, x| g.softmax_cross_entropy(x, &targets),
            &random_matrix(3, 4, 70),
            2e-2,
        );
    }

    #[test]
    fn sigmoid_bce_gradient_matches() {
        let targets = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
        check_gradient(
            |g, x| g.sigmoid_bce(x, &targets),
            &random_matrix(3, 2, 80),
            2e-2,
        );
    }

    #[test]
    fn transpose_mul_scale_chain_matches() {
        let probe = random_matrix(4, 2, 90);
        check_gradient(
            |g, x| {
                let t = g.transpose(x);
                let p = g.leaf(probe.clone());
                let m = g.mul(t, p);
                let s = g.scale(m, 0.37);
                sum_to_scalar(g, s)
            },
            &random_matrix(2, 4, 91),
            2e-2,
        );
    }

    #[test]
    fn gradients_accumulate_when_node_reused() {
        // loss = sum(x*x): dx should be 2x (x used twice through Mul).
        let x_val = random_matrix(2, 2, 100);
        let mut g = Graph::new();
        let x = g.leaf(x_val.clone());
        let sq = g.mul(x, x);
        let loss = sum_to_scalar(&mut g, sq);
        g.backward(loss);
        let grad = g.grad(x);
        for i in 0..2 {
            for j in 0..2 {
                assert!((grad.get(i, j) - 2.0 * x_val.get(i, j)).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn cross_entropy_loss_value_is_correct() {
        let mut g = Graph::new();
        let logits = g.leaf(Matrix::from_rows(&[&[0.0, 0.0]]));
        let targets = Matrix::from_rows(&[&[1.0, 0.0]]);
        let loss = g.softmax_cross_entropy(logits, &targets);
        assert!((g.value(loss).get(0, 0) - (2.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "loss must be scalar")]
    fn backward_rejects_non_scalar() {
        let mut g = Graph::new();
        let x = g.leaf(Matrix::zeros(2, 2));
        g.backward(x);
    }

    /// One forward/backward round of a small MLP-ish graph; returns the
    /// loss value and the leaf gradient.
    fn train_round(g: &mut Graph, x_val: &Matrix, w_val: &Matrix) -> (f32, Matrix) {
        let x = g.leaf(x_val.clone());
        let w = g.leaf(w_val.clone());
        let h = g.matmul(x, w);
        let h = g.gelu(h);
        let s = g.scaled_row_softmax(h, 0.5);
        let loss = sum_to_scalar(g, s);
        g.backward(loss);
        (g.value(loss).get(0, 0), g.grad(x))
    }

    #[test]
    fn arena_reuse_is_bitwise_transparent() {
        // Running the same step through one reset() graph, a reused-after-
        // drop pool, and completely fresh state must agree bit for bit —
        // recycled buffers may not leak any stale content.
        let x_val = random_matrix(6, 5, 110);
        let w_val = random_matrix(5, 4, 111);

        let mut reused = Graph::new();
        let (l1, g1) = train_round(&mut reused, &x_val, &w_val);
        reused.reset();
        let (l2, g2) = train_round(&mut reused, &x_val, &w_val);
        drop(reused);
        // Pool is now warm; a new graph draws recycled buffers.
        let mut warm = Graph::new();
        let (l3, g3) = train_round(&mut warm, &x_val, &w_val);

        assert_eq!(l1.to_bits(), l2.to_bits());
        assert_eq!(l1.to_bits(), l3.to_bits());
        assert_eq!(g1.data(), g2.data());
        assert_eq!(g1.data(), g3.data());
    }

    #[test]
    fn reset_clears_tape_and_take_value_moves() {
        let mut g = Graph::new();
        let x = g.leaf(Matrix::filled(2, 2, 3.0));
        let y = g.scale(x, 2.0);
        assert_eq!(g.len(), 2);
        let v = g.take_value(y);
        assert_eq!(v, Matrix::filled(2, 2, 6.0));
        assert_eq!(g.value(y).shape(), (0, 0));
        g.reset();
        assert!(g.is_empty());
    }

    #[test]
    fn leaf_gather_matches_select_rows() {
        let table = random_matrix(7, 3, 120);
        let ids = [4usize, 0, 6, 4];
        let mut g = Graph::new();
        let gathered = g.leaf_gather(&table, &ids);
        let t = g.leaf(table.clone());
        let selected = g.select_rows(t, &ids);
        assert_eq!(g.value(gathered).data(), g.value(selected).data());
    }

    /// A Fast-precision tape must track the Exact tape element-wise
    /// through a transformer-shaped op chain (matmul → gelu → tanh →
    /// sigmoid → scaled softmax). Loose absolute tolerance: each fast op
    /// contributes ≤ 2e-4.
    #[test]
    fn fast_tape_tracks_exact_tape_within_tolerance() {
        let a = random_matrix(9, 12, 310);
        let b = random_matrix(12, 9, 311);
        let run = |precision: Precision| {
            let mut g = Graph::with_precision(precision);
            let na = g.leaf(a.clone());
            let nb = g.leaf(b.clone());
            let mm = g.matmul(na, nb);
            let ge = g.gelu(mm);
            let th = g.tanh(ge);
            let sg = g.sigmoid(th);
            let sm = g.scaled_row_softmax(sg, 3.0);
            g.take_value(sm)
        };
        let exact = run(Precision::Exact);
        let fast = run(Precision::Fast);
        assert_eq!(exact.shape(), fast.shape());
        for (e, f) in exact.data().iter().zip(fast.data()) {
            assert!((e - f).abs() <= 1e-3, "exact={e} fast={f}");
        }
        // And the default constructor stays Exact.
        assert_eq!(Graph::new().precision(), Precision::Exact);
    }

    #[test]
    #[should_panic(expected = "inference-only")]
    fn fast_gelu_backward_panics() {
        let a = random_matrix(3, 3, 312);
        let mut g = Graph::with_precision(Precision::Fast);
        let na = g.leaf(a);
        let ge = g.gelu(na);
        let m = g.mean_rows(ge);
        let ones = g.leaf(Matrix::filled(1, 3, 1.0));
        let loss = g.matmul_t(m, ones);
        g.backward(loss);
    }

    /// On both precision tiers, routing a weight through pre-packed panels
    /// must reproduce the tape-node matmul bit for bit — in both pack
    /// orientations (W for `x·W`, Wᵀ-packed for `x·Wᵀ`).
    #[test]
    fn matmul_prepacked_matches_tape_matmul_bitwise() {
        let x = random_matrix(5, 7, 320);
        let w = random_matrix(7, 9, 321);
        let wt = random_matrix(9, 7, 322);
        for precision in [Precision::Exact, Precision::Fast] {
            let mut g = Graph::with_precision(precision);
            let nx = g.leaf(x.clone());
            let nw = g.leaf(w.clone());
            let nwt = g.leaf(wt.clone());
            let via_tape = g.matmul(nx, nw);
            let via_tape_t = g.matmul_t(nx, nwt);
            let packed = PackedMatrix::pack(&w);
            let packed_t = PackedMatrix::pack_transposed(&wt);
            let via_pack = g.matmul_prepacked(nx, &packed);
            let via_pack_t = g.matmul_prepacked(nx, &packed_t);
            assert_eq!(g.value(via_tape).data(), g.value(via_pack).data());
            assert_eq!(g.value(via_tape_t).data(), g.value(via_pack_t).data());
        }
    }

    #[test]
    #[should_panic(expected = "inference-only")]
    fn matmul_prepacked_backward_panics() {
        let x = random_matrix(1, 3, 323);
        let w = random_matrix(3, 1, 324);
        let mut g = Graph::new();
        let nx = g.leaf(x);
        let packed = PackedMatrix::pack(&w);
        let y = g.matmul_prepacked(nx, &packed);
        g.backward(y);
    }

    /// Fast-tier layer norm (fused single-sweep row pass, SIMD-dispatched)
    /// must track the Exact op within the fast tier's documented bounds.
    #[test]
    fn fast_layer_norm_tracks_exact_within_tolerance() {
        let x = random_matrix(6, 13, 330);
        let gain = random_matrix(1, 13, 331);
        let bias = random_matrix(1, 13, 332);
        let run = |precision: Precision| {
            let mut g = Graph::with_precision(precision);
            let nx = g.leaf(x.clone());
            let ng = g.leaf(gain.clone());
            let nb = g.leaf(bias.clone());
            let y = g.layer_norm(nx, ng, nb);
            g.take_value(y)
        };
        let exact = run(Precision::Exact);
        let fast = run(Precision::Fast);
        assert_eq!(exact.shape(), fast.shape());
        for (e, f) in exact.data().iter().zip(fast.data()) {
            assert!((e - f).abs() <= 1e-4, "exact={e} fast={f}");
        }
    }

    #[test]
    #[should_panic(expected = "inference-only")]
    fn fast_layer_norm_backward_panics() {
        let x = random_matrix(2, 3, 333);
        let mut g = Graph::with_precision(Precision::Fast);
        let nx = g.leaf(x);
        let ng = g.leaf(Matrix::filled(1, 3, 1.0));
        let nb = g.leaf(Matrix::zeros(1, 3));
        let y = g.layer_norm(nx, ng, nb);
        let m = g.mean_rows(y);
        let ones = g.leaf(Matrix::filled(1, 3, 1.0));
        let loss = g.matmul_t(m, ones);
        g.backward(loss);
    }
}
