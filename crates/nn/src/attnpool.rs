//! Attention-pooling sequence classifier ("HAN-lite").
//!
//! The hierarchical attention network used by WeSTClass-HAN reads a word
//! sequence, scores each word with a learned attention vector, pools, and
//! classifies. This is that architecture reduced to one level: token
//! embeddings are *fixed inputs* (the static embedding table), and the
//! model learns the attention scorer and the output head:
//!
//! ```text
//! s_t = u · tanh(W e_t + b)        (attention logits)
//! a   = softmax(s)                  (word weights)
//! doc = Σ_t a_t · e_t               (attention pool)
//! y   = softmax(V doc + c)
//! ```

use crate::graph::{Graph, NodeId};
use crate::layers::Linear;
use crate::params::{Adam, Binding, ParamStore};
use rand::seq::SliceRandom;
use structmine_linalg::{rng as lrng, vector, Matrix};

/// Attention-pooling classifier over fixed token-embedding sequences.
pub struct AttnPoolClassifier {
    store: ParamStore,
    attn_proj: Linear,
    attn_vec: crate::params::ParamId,
    out: Linear,
    d_in: usize,
    d_attn: usize,
    n_classes: usize,
}

impl AttnPoolClassifier {
    /// Build a classifier over `d_in`-dimensional token embeddings.
    pub fn new(d_in: usize, d_attn: usize, n_classes: usize, seed: u64) -> Self {
        let mut store = ParamStore::new();
        let mut rng = lrng::seeded(seed);
        let attn_proj = Linear::new(&mut store, "attn.proj", d_in, d_attn, &mut rng);
        let attn_vec = store.xavier("attn.u", d_attn, 1, &mut rng);
        let out = Linear::new(&mut store, "out", d_in, n_classes, &mut rng);
        AttnPoolClassifier {
            store,
            attn_proj,
            attn_vec,
            out,
            d_in,
            d_attn,
            n_classes,
        }
    }

    /// Number of output classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Attention width.
    pub fn d_attn(&self) -> usize {
        self.d_attn
    }

    fn forward(&self, g: &mut Graph, binding: &mut Binding, seq: &Matrix) -> (NodeId, NodeId) {
        debug_assert_eq!(seq.cols(), self.d_in);
        let x = g.leaf(seq.clone());
        let proj = self.attn_proj.forward(&self.store, g, binding, x);
        let act = g.tanh(proj);
        let u = self.store.bind(g, self.attn_vec, binding);
        let scores = g.matmul(act, u); // len x 1
        let scores_t = g.transpose(scores); // 1 x len
        let weights = g.row_softmax(scores_t);
        let pooled = g.matmul(weights, x); // 1 x d_in
        let logits = self.out.forward(&self.store, g, binding, pooled);
        (logits, weights)
    }

    /// Train on token-embedding sequences with soft targets (`n x classes`).
    pub fn fit(
        &mut self,
        sequences: &[Matrix],
        targets: &Matrix,
        epochs: usize,
        lr: f32,
        seed: u64,
    ) -> f32 {
        assert_eq!(sequences.len(), targets.rows());
        if sequences.is_empty() {
            return 0.0;
        }
        let mut adam = Adam::new(&self.store, lr, 5.0);
        let mut order: Vec<usize> = (0..sequences.len()).collect();
        let mut rng = lrng::seeded(seed);
        let mut last = 0.0f32;
        for _ in 0..epochs {
            order.shuffle(&mut rng);
            let mut epoch_loss = 0.0f32;
            for chunk in order.chunks(16) {
                let mut g = Graph::new();
                let mut binding = Binding::new();
                let mut total: Option<NodeId> = None;
                for &i in chunk {
                    if sequences[i].rows() == 0 {
                        continue;
                    }
                    let (logits, _) = self.forward(&mut g, &mut binding, &sequences[i]);
                    let t = targets.select_rows(&[i]);
                    let loss = g.softmax_cross_entropy(logits, &t);
                    let scaled = g.scale(loss, 1.0 / chunk.len() as f32);
                    total = Some(match total {
                        None => scaled,
                        Some(acc) => g.add(acc, scaled),
                    });
                }
                if let Some(loss) = total {
                    epoch_loss += g.value(loss).get(0, 0);
                    g.backward(loss);
                    adam.step(&mut self.store, &g, &binding);
                }
            }
            last = epoch_loss;
        }
        last
    }

    /// Class probabilities for one sequence.
    pub fn predict_proba_one(&self, seq: &Matrix) -> Vec<f32> {
        if seq.rows() == 0 {
            return vec![1.0 / self.n_classes as f32; self.n_classes];
        }
        let mut g = Graph::new();
        let mut binding = Binding::new();
        let (logits, _) = self.forward(&mut g, &mut binding, seq);
        let mut probs = g.value(logits).row(0).to_vec();
        structmine_linalg::stats::softmax_inplace(&mut probs);
        probs
    }

    /// Class probabilities for many sequences (`n x classes`).
    pub fn predict_proba(&self, sequences: &[Matrix]) -> Matrix {
        let mut out = Matrix::zeros(sequences.len(), self.n_classes);
        for (i, seq) in sequences.iter().enumerate() {
            out.row_mut(i).copy_from_slice(&self.predict_proba_one(seq));
        }
        out
    }

    /// Hard predictions.
    pub fn predict(&self, sequences: &[Matrix]) -> Vec<usize> {
        sequences
            .iter()
            .map(|s| vector::argmax(&self.predict_proba_one(s)).unwrap_or(0))
            .collect()
    }

    /// The attention weights the model assigns to each token of a sequence
    /// (diagnostics: which words the classifier considers important).
    pub fn attention_weights(&self, seq: &Matrix) -> Vec<f32> {
        if seq.rows() == 0 {
            return Vec::new();
        }
        let mut g = Graph::new();
        let mut binding = Binding::new();
        let (_, weights) = self.forward(&mut g, &mut binding, seq);
        g.value(weights).row(0).to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use structmine_linalg::rng as lrng;

    /// Sequences where only ONE token (position varies) carries the class
    /// signal; attention must find it, mean-pooling dilutes it.
    fn needle_data(n: usize, seed: u64) -> (Vec<Matrix>, Vec<usize>) {
        let mut rng = lrng::seeded(seed);
        let mut seqs = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let class = i % 2;
            let len = 12;
            let mut m = Matrix::zeros(len, 4);
            lrng::fill_gaussian(&mut rng, m.data_mut(), 0.15);
            // One needle token encodes the class in dimension 0/1.
            use rand::Rng;
            let pos = rng.gen_range(0..len);
            m.set(pos, 0, if class == 0 { 2.0 } else { -2.0 });
            m.set(pos, 1, if class == 0 { -2.0 } else { 2.0 });
            // Mark the needle in dims 2/3 so attention has a cue.
            m.set(pos, 2, 1.5);
            m.set(pos, 3, 1.5);
            seqs.push(m);
            labels.push(class);
        }
        (seqs, labels)
    }

    #[test]
    fn attention_finds_needle_tokens() {
        let (seqs, labels) = needle_data(160, 1);
        let targets = crate::classifiers::one_hot(&labels, 2, 0.05);
        let mut clf = AttnPoolClassifier::new(4, 8, 2, 3);
        clf.fit(&seqs, &targets, 40, 2e-2, 7);
        let preds = clf.predict(&seqs);
        let acc =
            preds.iter().zip(&labels).filter(|(a, b)| a == b).count() as f32 / labels.len() as f32;
        assert!(acc > 0.9, "attention classifier acc {acc}");
    }

    #[test]
    fn attention_weights_concentrate_on_the_needle() {
        let (seqs, labels) = needle_data(160, 2);
        let targets = crate::classifiers::one_hot(&labels, 2, 0.05);
        let mut clf = AttnPoolClassifier::new(4, 8, 2, 4);
        clf.fit(&seqs, &targets, 40, 2e-2, 8);
        // For each sequence the argmax-attention token should be the needle
        // (identified by dims 2/3 = 1.5) most of the time.
        let mut hits = 0usize;
        for seq in seqs.iter().take(50) {
            let w = clf.attention_weights(seq);
            let best = vector::argmax(&w).unwrap();
            if seq.get(best, 2) > 1.0 {
                hits += 1;
            }
        }
        // Chance would be ~4/50 (12 positions); the attention head should
        // concentrate far above that even when classification is already
        // solvable without perfect localization.
        assert!(hits >= 18, "attention found the needle in only {hits}/50");
    }

    #[test]
    fn empty_sequence_is_uniform() {
        let clf = AttnPoolClassifier::new(4, 8, 3, 5);
        let p = clf.predict_proba_one(&Matrix::zeros(0, 4));
        assert!(p.iter().all(|&v| (v - 1.0 / 3.0).abs() < 1e-6));
    }

    #[test]
    fn attention_weights_sum_to_one() {
        let clf = AttnPoolClassifier::new(4, 8, 2, 6);
        let mut rng = lrng::seeded(9);
        let mut seq = Matrix::zeros(7, 4);
        lrng::fill_gaussian(&mut rng, seq.data_mut(), 1.0);
        let w = clf.attention_weights(&seq);
        assert_eq!(w.len(), 7);
        assert!((w.iter().sum::<f32>() - 1.0).abs() < 1e-4);
    }
}
