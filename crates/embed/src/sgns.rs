//! Skip-gram with negative sampling (word2vec).
//!
//! A direct implementation of Mikolov et al.'s SGNS: for each (center,
//! context) pair within a window, pull the pair's vectors together and push
//! `k` negatives (sampled from the unigram distribution raised to 0.75)
//! apart, under a logistic loss with manually derived gradients.

use rand::rngs::StdRng;
use rand::Rng;
use structmine_linalg::{rng as lrng, vector, Matrix};
use structmine_text::vocab::{TokenId, Vocab};
use structmine_text::Corpus;

/// SGNS hyper-parameters.
#[derive(Clone, Copy, Debug)]
pub struct SgnsConfig {
    /// Embedding dimensionality.
    pub dim: usize,
    /// Context window radius.
    pub window: usize,
    /// Negative samples per positive pair.
    pub negatives: usize,
    /// Training epochs over the corpus.
    pub epochs: usize,
    /// Initial learning rate (linearly decayed to 10%).
    pub lr: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SgnsConfig {
    fn default() -> Self {
        SgnsConfig {
            dim: 32,
            window: 4,
            negatives: 5,
            epochs: 4,
            lr: 0.05,
            seed: 17,
        }
    }
}

/// Trained word vectors (input embeddings).
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct WordVectors {
    vectors: Matrix,
}

impl WordVectors {
    /// Wrap a `vocab x d` matrix as word vectors.
    pub fn from_matrix(vectors: Matrix) -> Self {
        WordVectors { vectors }
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.vectors.cols()
    }

    /// The vector of a token.
    pub fn get(&self, t: TokenId) -> &[f32] {
        self.vectors.row(t as usize)
    }

    /// The full `vocab x d` matrix.
    pub fn matrix(&self) -> &Matrix {
        &self.vectors
    }

    /// Cosine similarity of two tokens.
    pub fn similarity(&self, a: TokenId, b: TokenId) -> f32 {
        vector::cosine(self.get(a), self.get(b))
    }

    /// The `k` most similar tokens to a query vector, skipping special
    /// tokens and any token in `exclude`.
    pub fn nearest(&self, query: &[f32], k: usize, exclude: &[TokenId]) -> Vec<(TokenId, f32)> {
        let mut scored: Vec<(TokenId, f32)> = (0..self.vectors.rows() as TokenId)
            .filter(|&t| !Vocab::is_special(t) && !exclude.contains(&t))
            .map(|t| (t, vector::cosine(query, self.get(t))))
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        scored.truncate(k);
        scored
    }

    /// Mean of the vectors of `tokens` (unnormalized).
    pub fn mean_vector(&self, tokens: &[TokenId]) -> Vec<f32> {
        let refs: Vec<&[f32]> = tokens.iter().map(|&t| self.get(t)).collect();
        vector::mean_of(&refs, self.dim())
    }

    /// Average word vector of a document, weighted by `weights` (e.g. IDF);
    /// `None` weights means uniform.
    pub fn doc_vector(&self, tokens: &[TokenId], weights: Option<&[f32]>) -> Vec<f32> {
        let mut out = vec![0.0f32; self.dim()];
        let mut total = 0.0f32;
        for (i, &t) in tokens.iter().enumerate() {
            if Vocab::is_special(t) {
                continue;
            }
            let w = weights.map_or(1.0, |ws| ws[i]);
            vector::axpy(&mut out, w, self.get(t));
            total += w;
        }
        if total > 0.0 {
            vector::scale(&mut out, 1.0 / total);
        }
        out
    }
}

impl structmine_store::StableHash for WordVectors {
    fn stable_hash(&self, h: &mut structmine_store::StableHasher) {
        self.vectors.stable_hash(h);
    }
}

impl structmine_store::StableHash for SgnsConfig {
    fn stable_hash(&self, h: &mut structmine_store::StableHasher) {
        self.dim.stable_hash(h);
        self.window.stable_hash(h);
        self.negatives.stable_hash(h);
        self.epochs.stable_hash(h);
        self.lr.stable_hash(h);
        self.seed.stable_hash(h);
    }
}

/// The SGNS trainer.
pub struct Sgns;

impl Sgns {
    /// Train word vectors on `corpus`.
    pub fn train(corpus: &Corpus, cfg: &SgnsConfig) -> WordVectors {
        let v = corpus.vocab.len();
        let mut rng = lrng::seeded(cfg.seed);
        let mut input = Matrix::zeros(v, cfg.dim);
        lrng::fill_gaussian(&mut rng, input.data_mut(), 0.5 / cfg.dim as f32);
        let mut output = Matrix::zeros(v, cfg.dim);

        let neg_weights = corpus.vocab.unigram_weights(0.75);
        let neg_table = NegativeTable::new(&neg_weights);

        let total_steps = (cfg.epochs * corpus.n_tokens()).max(1);
        let mut step = 0usize;
        for _ in 0..cfg.epochs {
            for doc in &corpus.docs {
                let toks = &doc.tokens;
                for (pos, &center) in toks.iter().enumerate() {
                    if Vocab::is_special(center) {
                        step += 1;
                        continue;
                    }
                    let lr = cfg.lr * (1.0 - 0.9 * step as f32 / total_steps as f32);
                    let win = 1 + rng.gen_range(0..cfg.window);
                    let lo = pos.saturating_sub(win);
                    let hi = (pos + win + 1).min(toks.len());
                    for (ctx_pos, &context) in toks.iter().enumerate().take(hi).skip(lo) {
                        if ctx_pos == pos {
                            continue;
                        }
                        if Vocab::is_special(context) {
                            continue;
                        }
                        Self::update_pair(
                            &mut input,
                            &mut output,
                            center as usize,
                            context as usize,
                            &neg_table,
                            cfg.negatives,
                            lr,
                            &mut rng,
                        );
                    }
                    step += 1;
                }
            }
        }
        WordVectors { vectors: input }
    }

    #[allow(clippy::too_many_arguments)]
    fn update_pair(
        input: &mut Matrix,
        output: &mut Matrix,
        center: usize,
        context: usize,
        neg_table: &NegativeTable,
        negatives: usize,
        lr: f32,
        rng: &mut StdRng,
    ) {
        let dim = input.cols();
        let mut center_grad = vec![0.0f32; dim];
        // Positive pair: label 1.
        {
            let (cin, cout) = (input.row(center).to_vec(), output.row_mut(context));
            let score = sigmoid(vector::dot(&cin, cout));
            let g = lr * (1.0 - score);
            for i in 0..dim {
                center_grad[i] += g * cout[i];
                cout[i] += g * cin[i];
            }
        }
        // Negatives: label 0.
        for _ in 0..negatives {
            let neg = neg_table.sample(rng);
            if neg == context {
                continue;
            }
            let (cin, nout) = (input.row(center).to_vec(), output.row_mut(neg));
            let score = sigmoid(vector::dot(&cin, nout));
            let g = lr * (0.0 - score);
            for i in 0..dim {
                center_grad[i] += g * nout[i];
                nout[i] += g * cin[i];
            }
        }
        vector::axpy(input.row_mut(center), 1.0, &center_grad);
    }
}

/// Alias sampling table for the negative distribution.
pub(crate) struct NegativeTable {
    cumulative: Vec<f32>,
}

impl NegativeTable {
    pub(crate) fn new(weights: &[f32]) -> Self {
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0f32;
        for &w in weights {
            acc += w;
            cumulative.push(acc);
        }
        NegativeTable { cumulative }
    }

    pub(crate) fn sample(&self, rng: &mut StdRng) -> usize {
        let total = *self.cumulative.last().unwrap_or(&0.0);
        if total <= 0.0 {
            return rng.gen_range(0..self.cumulative.len().max(1));
        }
        let target = rng.gen_range(0.0..total);
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&target).unwrap_or(std::cmp::Ordering::Equal))
        {
            Ok(i) | Err(i) => i.min(self.cumulative.len() - 1),
        }
    }
}

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use structmine_text::synth::recipes;

    fn trained() -> (structmine_text::Dataset, WordVectors) {
        let d = recipes::agnews(0.15, 3).unwrap();
        let wv = Sgns::train(
            &d.corpus,
            &SgnsConfig {
                epochs: 3,
                dim: 24,
                ..Default::default()
            },
        );
        (d, wv)
    }

    #[test]
    fn same_topic_words_are_closer_than_cross_topic() {
        let (d, wv) = trained();
        let v = &d.corpus.vocab;
        let team = v.id("team").unwrap();
        let coach = v.id("coach").unwrap();
        let stock = v.id("stock").unwrap();
        let within = wv.similarity(team, coach);
        let across = wv.similarity(team, stock);
        // The recipes deliberately contaminate classes with each other's
        // words, so the margin is modest — but the ordering must hold.
        assert!(
            within > across + 0.02,
            "within-topic {within} should exceed cross-topic {across}"
        );
    }

    #[test]
    fn nearest_neighbors_of_label_name_are_topical() {
        let (d, wv) = trained();
        let v = &d.corpus.vocab;
        let sports = v.id("sports").unwrap();
        let neighbors = wv.nearest(wv.get(sports), 10, &[sports]);
        let sports_lex = structmine_text::synth::lexicon::lexicon("sports");
        let topical = neighbors
            .iter()
            .filter(|(t, _)| sports_lex.contains(&v.word(*t)))
            .count();
        assert!(
            topical >= 5,
            "only {topical}/10 neighbors topical: {:?}",
            neighbors
                .iter()
                .map(|(t, s)| (v.word(*t), *s))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn doc_vectors_separate_classes() {
        // IDF-weighted doc vectors (what the methods consume) must carry
        // class signal: nearest-class-mean assignment beats chance clearly.
        let (d, wv) = trained();
        let tfidf = structmine_text::tfidf::TfIdf::fit(&d.corpus);
        let features = crate::docvec::weighted_doc_vectors(&d.corpus, &wv, &tfidf);
        let k = d.n_classes();
        let mut means = vec![vec![0.0f32; wv.dim()]; k];
        let mut counts = vec![0usize; k];
        for (i, doc) in d.corpus.docs.iter().enumerate() {
            vector::axpy(&mut means[doc.labels[0]], 1.0, features.row(i));
            counts[doc.labels[0]] += 1;
        }
        for (m, &n) in means.iter_mut().zip(&counts) {
            vector::scale(m, 1.0 / n.max(1) as f32);
        }
        let correct = d
            .corpus
            .docs
            .iter()
            .enumerate()
            .filter(|(i, doc)| {
                let scores: Vec<f32> = means
                    .iter()
                    .map(|m| vector::cosine(features.row(*i), m))
                    .collect();
                vector::argmax(&scores) == Some(doc.labels[0])
            })
            .count();
        let acc = correct as f32 / d.corpus.len() as f32;
        assert!(
            acc > 1.5 / k as f32,
            "doc-vector class signal too weak: {acc}"
        );
    }

    #[test]
    fn negative_table_respects_weights() {
        let mut rng = lrng::seeded(4);
        let table = NegativeTable::new(&[0.0, 1.0, 3.0]);
        let mut counts = [0usize; 3];
        for _ in 0..20_000 {
            counts[table.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[0], 0);
        assert!(counts[2] > counts[1] * 2);
    }

    #[test]
    fn training_is_deterministic() {
        let d = recipes::yelp(0.05, 1).unwrap();
        let cfg = SgnsConfig {
            epochs: 1,
            dim: 8,
            ..Default::default()
        };
        let a = Sgns::train(&d.corpus, &cfg);
        let b = Sgns::train(&d.corpus, &cfg);
        assert_eq!(a.matrix(), b.matrix());
    }

    #[test]
    fn doc_vector_ignores_special_tokens_and_weights() {
        let (d, wv) = trained();
        let goal = d.corpus.vocab.id("goal").unwrap();
        let v1 = wv.doc_vector(&[goal, structmine_text::vocab::PAD], None);
        let v2 = wv.doc_vector(&[goal], None);
        assert_eq!(v1, v2);
        let weighted = wv.doc_vector(&[goal, goal], Some(&[1.0, 3.0]));
        assert!(vector::cosine(&weighted, &v2) > 0.999);
    }
}
