//! Von Mises–Fisher distribution on the unit hypersphere.
//!
//! WeSTClass fits a vMF to each class's seed-keyword embeddings and samples
//! directions from it to generate pseudo documents. Fitting uses the
//! Banerjee et al. (2005) concentration approximation; sampling uses Wood's
//! (1994) rejection algorithm, valid in any dimension.

use rand::rngs::StdRng;
use rand::Rng;
use structmine_linalg::{rng as lrng, vector};

/// A fitted von Mises–Fisher distribution.
#[derive(Clone, Debug)]
pub struct VonMisesFisher {
    mu: Vec<f32>,
    kappa: f32,
}

impl VonMisesFisher {
    /// Construct from an explicit mean direction (will be normalized) and
    /// concentration.
    pub fn new(mu: &[f32], kappa: f32) -> Self {
        assert!(kappa >= 0.0, "kappa must be non-negative");
        VonMisesFisher {
            mu: vector::normalized(mu),
            kappa,
        }
    }

    /// Maximum-likelihood fit from sample vectors (normalized internally).
    ///
    /// `kappa ≈ r̄(d - r̄²) / (1 - r̄²)` where `r̄` is the resultant length.
    pub fn fit(samples: &[&[f32]]) -> Self {
        assert!(!samples.is_empty(), "need at least one sample");
        let d = samples[0].len();
        let mut mean = vec![0.0f32; d];
        for s in samples {
            let unit = vector::normalized(s);
            vector::axpy(&mut mean, 1.0 / samples.len() as f32, &unit);
        }
        let rbar = vector::norm(&mean).min(0.9999);
        let kappa = if samples.len() == 1 || rbar < 1e-6 {
            // Degenerate: a single direction gets a high fixed concentration.
            if samples.len() == 1 {
                50.0
            } else {
                0.0
            }
        } else {
            rbar * (d as f32 - rbar * rbar) / (1.0 - rbar * rbar)
        };
        VonMisesFisher {
            mu: vector::normalized(&mean),
            kappa,
        }
    }

    /// The mean direction (unit norm).
    pub fn mu(&self) -> &[f32] {
        &self.mu
    }

    /// The concentration parameter.
    pub fn kappa(&self) -> f32 {
        self.kappa
    }

    /// Draw a unit vector via Wood's rejection sampler.
    pub fn sample(&self, rng: &mut StdRng) -> Vec<f32> {
        let d = self.mu.len();
        if d == 1 {
            return vec![if rng.gen::<f32>() < 0.5 { -1.0 } else { 1.0 }];
        }
        if self.kappa < 1e-6 {
            return random_unit(rng, d);
        }
        let dm1 = (d - 1) as f32;
        let b = (-2.0 * self.kappa + (4.0 * self.kappa * self.kappa + dm1 * dm1).sqrt()) / dm1;
        let x0 = (1.0 - b) / (1.0 + b);
        let c = self.kappa * x0 + dm1 * (1.0 - x0 * x0).ln();
        let w = loop {
            let z = sample_beta(rng, dm1 / 2.0, dm1 / 2.0);
            let w = (1.0 - (1.0 + b) * z) / (1.0 - (1.0 - b) * z);
            let u: f32 = rng.gen_range(f32::EPSILON..1.0);
            if self.kappa * w + dm1 * (1.0 - x0 * w).ln() - c >= u.ln() {
                break w;
            }
        };
        // Random direction orthogonal to mu.
        let mut v = random_unit(rng, d);
        let proj = vector::dot(&v, &self.mu);
        vector::axpy(&mut v, -proj, &self.mu);
        vector::normalize(&mut v);
        let mut out = vec![0.0f32; d];
        vector::axpy(&mut out, w, &self.mu);
        vector::axpy(&mut out, (1.0 - w * w).max(0.0).sqrt(), &v);
        vector::normalize(&mut out);
        out
    }
}

fn random_unit(rng: &mut StdRng, d: usize) -> Vec<f32> {
    loop {
        let mut v = vec![0.0f32; d];
        lrng::fill_gaussian(rng, &mut v, 1.0);
        if vector::norm(&v) > 1e-6 {
            vector::normalize(&mut v);
            return v;
        }
    }
}

fn sample_beta(rng: &mut StdRng, a: f32, b: f32) -> f32 {
    let x = lrng::sample_gamma(rng, a);
    let y = lrng::sample_gamma(rng, b);
    if x + y <= 0.0 {
        0.5
    } else {
        x / (x + y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_recovers_mean_direction() {
        let mut rng = lrng::seeded(1);
        let mu = vector::normalized(&[1.0, 2.0, 3.0, 0.0]);
        let gen = VonMisesFisher::new(&mu, 40.0);
        let samples: Vec<Vec<f32>> = (0..500).map(|_| gen.sample(&mut rng)).collect();
        let refs: Vec<&[f32]> = samples.iter().map(|s| s.as_slice()).collect();
        let fitted = VonMisesFisher::fit(&refs);
        let align = vector::dot(fitted.mu(), &mu);
        assert!(align > 0.99, "alignment {align}");
        assert!(
            fitted.kappa() > 20.0 && fitted.kappa() < 80.0,
            "kappa {} should be near 40",
            fitted.kappa()
        );
    }

    #[test]
    fn samples_are_unit_norm_and_concentrated() {
        let mut rng = lrng::seeded(2);
        let mu = vector::normalized(&[0.0, 0.0, 1.0]);
        let vmf = VonMisesFisher::new(&mu, 100.0);
        let mut mean_cos = 0.0f32;
        for _ in 0..200 {
            let s = vmf.sample(&mut rng);
            assert!((vector::norm(&s) - 1.0).abs() < 1e-4);
            mean_cos += vector::dot(&s, &mu);
        }
        mean_cos /= 200.0;
        assert!(mean_cos > 0.95, "mean cosine {mean_cos}");
    }

    #[test]
    fn low_kappa_spreads_samples() {
        let mut rng = lrng::seeded(3);
        let mu = vector::normalized(&[1.0, 0.0, 0.0, 0.0]);
        let tight = VonMisesFisher::new(&mu, 200.0);
        let loose = VonMisesFisher::new(&mu, 2.0);
        let spread = |v: &VonMisesFisher, rng: &mut StdRng| {
            (0..200)
                .map(|_| vector::dot(&v.sample(rng), &mu))
                .sum::<f32>()
                / 200.0
        };
        let tight_cos = spread(&tight, &mut rng);
        let loose_cos = spread(&loose, &mut rng);
        assert!(
            tight_cos > loose_cos + 0.2,
            "tight {tight_cos} loose {loose_cos}"
        );
    }

    #[test]
    fn kappa_zero_is_uniform_on_sphere() {
        let mut rng = lrng::seeded(4);
        let vmf = VonMisesFisher::new(&[1.0, 0.0, 0.0], 0.0);
        let mean: f32 = (0..2000).map(|_| vmf.sample(&mut rng)[0]).sum::<f32>() / 2000.0;
        assert!(mean.abs() < 0.08, "uniform mean component {mean}");
    }

    #[test]
    fn single_sample_fit_is_degenerate_but_valid() {
        let v = [0.0f32, 3.0];
        let fitted = VonMisesFisher::fit(&[&v]);
        assert!((vector::dot(fitted.mu(), &[0.0, 1.0]) - 1.0).abs() < 1e-5);
        assert!(fitted.kappa() > 10.0);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_fit_panics() {
        VonMisesFisher::fit(&[]);
    }
}
