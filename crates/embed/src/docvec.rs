//! Document vectors: TF-IDF-weighted embedding averages and PV-DBOW
//! ("Doc2Vec") training.
//!
//! The weighted average is the workhorse representation for the static
//! methods; PV-DBOW provides the Doc2Vec baseline in the MICoL table — each
//! document gets a trainable vector optimized to predict its own words under
//! negative sampling.

use crate::sgns::{NegativeTable, WordVectors};
use rand::Rng;
use structmine_linalg::{rng as lrng, vector, Matrix};
use structmine_text::tfidf::TfIdf;
use structmine_text::vocab::Vocab;
use structmine_text::Corpus;

/// TF-IDF-weighted average word vectors for every document (`n x d`).
pub fn weighted_doc_vectors(corpus: &Corpus, wv: &WordVectors, tfidf: &TfIdf) -> Matrix {
    let mut out = Matrix::zeros(corpus.len(), wv.dim());
    for (i, doc) in corpus.docs.iter().enumerate() {
        let weights: Vec<f32> = doc.tokens.iter().map(|&t| tfidf.idf(t)).collect();
        let v = wv.doc_vector(&doc.tokens, Some(&weights));
        out.row_mut(i).copy_from_slice(&v);
    }
    out
}

/// Uniform average word vectors for every document.
pub fn mean_doc_vectors(corpus: &Corpus, wv: &WordVectors) -> Matrix {
    let mut out = Matrix::zeros(corpus.len(), wv.dim());
    for (i, doc) in corpus.docs.iter().enumerate() {
        out.row_mut(i)
            .copy_from_slice(&wv.doc_vector(&doc.tokens, None));
    }
    out
}

/// PV-DBOW configuration.
#[derive(Clone, Copy, Debug)]
pub struct Pvdbow {
    /// Vector dimensionality.
    pub dim: usize,
    /// Negative samples per word.
    pub negatives: usize,
    /// Epochs over the corpus.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f32,
    /// Seed.
    pub seed: u64,
}

impl Default for Pvdbow {
    fn default() -> Self {
        Pvdbow {
            dim: 32,
            negatives: 5,
            epochs: 6,
            lr: 0.05,
            seed: 23,
        }
    }
}

impl Pvdbow {
    /// Train document vectors: each document vector is optimized to predict
    /// the words it contains (distributed bag of words). Returns `n x d`.
    pub fn train(&self, corpus: &Corpus) -> Matrix {
        let mut rng = lrng::seeded(self.seed);
        let mut docs = Matrix::zeros(corpus.len(), self.dim);
        lrng::fill_gaussian(&mut rng, docs.data_mut(), 0.5 / self.dim as f32);
        let mut words = Matrix::zeros(corpus.vocab.len(), self.dim);
        let neg = NegativeTable::new(&corpus.vocab.unigram_weights(0.75));
        let total = (self.epochs * corpus.n_tokens()).max(1);
        let mut step = 0usize;
        for _ in 0..self.epochs {
            for (d_idx, doc) in corpus.docs.iter().enumerate() {
                for &t in &doc.tokens {
                    step += 1;
                    if Vocab::is_special(t) {
                        continue;
                    }
                    let lr = self.lr * (1.0 - 0.9 * step as f32 / total as f32);
                    let mut dgrad = vec![0.0f32; self.dim];
                    {
                        let dv = docs.row(d_idx).to_vec();
                        let wrow = words.row_mut(t as usize);
                        let s = sigmoid(vector::dot(&dv, wrow));
                        let g = lr * (1.0 - s);
                        for i in 0..self.dim {
                            dgrad[i] += g * wrow[i];
                            wrow[i] += g * dv[i];
                        }
                    }
                    for _ in 0..self.negatives {
                        let n = neg.sample(&mut rng);
                        if n == t as usize {
                            continue;
                        }
                        let dv = docs.row(d_idx).to_vec();
                        let wrow = words.row_mut(n);
                        let s = sigmoid(vector::dot(&dv, wrow));
                        let g = lr * (0.0 - s);
                        for i in 0..self.dim {
                            dgrad[i] += g * wrow[i];
                            wrow[i] += g * dv[i];
                        }
                    }
                    vector::axpy(docs.row_mut(d_idx), 1.0, &dgrad);
                }
            }
        }
        docs
    }

    /// Infer a vector for an unseen token sequence against trained word
    /// outputs: gradient steps on a fresh doc vector with words frozen.
    /// (Used when ranking label descriptions against document vectors.)
    pub fn infer(
        &self,
        tokens: &[structmine_text::vocab::TokenId],
        words: &Matrix,
        seed: u64,
    ) -> Vec<f32> {
        let mut rng = lrng::seeded(seed);
        let mut dv = vec![0.0f32; self.dim];
        lrng::fill_gaussian(&mut rng, &mut dv, 0.1);
        for _ in 0..self.epochs * 3 {
            for &t in tokens {
                if Vocab::is_special(t) {
                    continue;
                }
                let wrow = words.row(t as usize);
                let s = sigmoid(vector::dot(&dv, wrow));
                let g = self.lr * (1.0 - s);
                let mut delta = vec![0.0f32; self.dim];
                vector::axpy(&mut delta, g, wrow);
                // A couple of random negatives keep the vector bounded.
                for _ in 0..self.negatives {
                    let n = rng.gen_range(0..words.rows());
                    if n == t as usize {
                        continue;
                    }
                    let nrow = words.row(n);
                    let sn = sigmoid(vector::dot(&dv, nrow));
                    vector::axpy(&mut delta, -self.lr * sn, nrow);
                }
                vector::axpy(&mut dv, 1.0, &delta);
            }
        }
        dv
    }
}

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sgns::{Sgns, SgnsConfig};
    use structmine_text::synth::recipes;

    #[test]
    fn weighted_doc_vectors_have_expected_shape() {
        let d = recipes::yelp(0.05, 1).unwrap();
        let wv = Sgns::train(
            &d.corpus,
            &SgnsConfig {
                epochs: 1,
                dim: 12,
                ..Default::default()
            },
        );
        let tfidf = TfIdf::fit(&d.corpus);
        let m = weighted_doc_vectors(&d.corpus, &wv, &tfidf);
        assert_eq!(m.shape(), (d.corpus.len(), 12));
        // No all-zero rows (every doc has non-special tokens).
        for i in 0..m.rows() {
            assert!(vector::norm(m.row(i)) > 0.0, "zero doc vector {i}");
        }
    }

    #[test]
    fn pvdbow_separates_classes() {
        let d = recipes::agnews(0.08, 2).unwrap();
        let docs = Pvdbow {
            epochs: 5,
            dim: 16,
            ..Default::default()
        }
        .train(&d.corpus);
        // Mean intra-class cosine must beat inter-class cosine.
        let n = d.corpus.len();
        let mut intra = (0.0f32, 0usize);
        let mut inter = (0.0f32, 0usize);
        for i in (0..n).step_by(3) {
            for j in (i + 1..n).step_by(7) {
                let sim = vector::cosine(docs.row(i), docs.row(j));
                if d.corpus.docs[i].labels == d.corpus.docs[j].labels {
                    intra.0 += sim;
                    intra.1 += 1;
                } else {
                    inter.0 += sim;
                    inter.1 += 1;
                }
            }
        }
        let intra_mean = intra.0 / intra.1 as f32;
        let inter_mean = inter.0 / inter.1 as f32;
        // Contaminated recipes keep the margin small; the ordering is the
        // property PV-DBOW must preserve.
        assert!(
            intra_mean > inter_mean,
            "intra {intra_mean} should exceed inter {inter_mean}"
        );
    }

    #[test]
    fn mean_doc_vectors_match_manual_average() {
        let d = recipes::yelp(0.05, 3).unwrap();
        let wv = Sgns::train(
            &d.corpus,
            &SgnsConfig {
                epochs: 1,
                dim: 8,
                ..Default::default()
            },
        );
        let m = mean_doc_vectors(&d.corpus, &wv);
        let manual = wv.doc_vector(&d.corpus.docs[0].tokens, None);
        assert_eq!(m.row(0), manual.as_slice());
    }
}
