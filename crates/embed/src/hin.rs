//! Heterogeneous information network (HIN) embedding.
//!
//! MetaCat views a metadata-rich corpus as a network of typed nodes
//! (documents, words, users, tags, venues, authors, labels) connected by
//! typed edges, and learns one embedding space by maximizing the likelihood
//! of observed edges with negative sampling — the same objective family as
//! PTE, ESim and metapath2vec. Baselines are expressed by restricting which
//! edge types participate in training.

use rand::rngs::StdRng;
use rand::Rng;
use structmine_linalg::{rng as lrng, vector, Matrix};

/// A typed multi-partite graph.
#[derive(Clone, Debug, Default)]
pub struct HinGraph {
    n_nodes: usize,
    partition_names: Vec<String>,
    partitions: Vec<(usize, usize)>,
    edge_type_names: Vec<String>,
    edges: Vec<Vec<(u32, u32)>>,
    node_partition: Vec<usize>,
}

impl HinGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `count` nodes of a new type; returns `(partition id, offset)` —
    /// node ids for this partition are `offset..offset + count`.
    pub fn add_partition(&mut self, name: &str, count: usize) -> (usize, usize) {
        let pid = self.partitions.len();
        let offset = self.n_nodes;
        self.partitions.push((offset, count));
        self.partition_names.push(name.to_string());
        self.n_nodes += count;
        self.node_partition.extend(std::iter::repeat_n(pid, count));
        (pid, offset)
    }

    /// Register an edge type; returns its id.
    pub fn add_edge_type(&mut self, name: &str) -> usize {
        self.edge_type_names.push(name.to_string());
        self.edges.push(Vec::new());
        self.edge_type_names.len() - 1
    }

    /// Add an undirected edge of type `etype` between global node ids.
    pub fn add_edge(&mut self, etype: usize, a: usize, b: usize) {
        debug_assert!(a < self.n_nodes && b < self.n_nodes);
        self.edges[etype].push((a as u32, b as u32));
    }

    /// Total node count.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Edge count of a type.
    pub fn n_edges(&self, etype: usize) -> usize {
        self.edges[etype].len()
    }

    /// Partition id of a node.
    pub fn partition_of(&self, node: usize) -> usize {
        self.node_partition[node]
    }

    /// Train embeddings using only the listed edge types (all when empty).
    pub fn embed(&self, cfg: &HinConfig, edge_types: &[usize]) -> Matrix {
        let mut rng = lrng::seeded(cfg.seed);
        let mut emb = Matrix::zeros(self.n_nodes, cfg.dim);
        lrng::fill_gaussian(&mut rng, emb.data_mut(), 0.5 / cfg.dim as f32);
        let mut ctx = Matrix::zeros(self.n_nodes, cfg.dim);

        let active: Vec<usize> = if edge_types.is_empty() {
            (0..self.edges.len()).collect()
        } else {
            edge_types.to_vec()
        };
        // Sample the edge TYPE first (uniformly over non-empty types), then
        // an edge within it — PTE-style alternation. Without this, dense
        // doc-word edges outnumber metadata edges ~30:1 and the joint space
        // degenerates to a text-only embedding.
        let pools: Vec<&Vec<(u32, u32)>> = active
            .iter()
            .map(|&t| &self.edges[t])
            .filter(|p| !p.is_empty())
            .collect();
        if pools.is_empty() {
            return emb;
        }

        let total = cfg.samples.max(1);
        for step in 0..total {
            let lr = cfg.lr * (1.0 - 0.9 * step as f32 / total as f32);
            let pool = pools[step % pools.len()];
            let &(a, b) = &pool[rng.gen_range(0..pool.len())];
            // Update both directions so the embedding is symmetric-ish.
            self.update(
                &mut emb, &mut ctx, a as usize, b as usize, lr, cfg, &mut rng,
            );
            self.update(
                &mut emb, &mut ctx, b as usize, a as usize, lr, cfg, &mut rng,
            );
        }
        emb
    }

    #[allow(clippy::too_many_arguments)]
    fn update(
        &self,
        emb: &mut Matrix,
        ctx: &mut Matrix,
        src: usize,
        dst: usize,
        lr: f32,
        cfg: &HinConfig,
        rng: &mut StdRng,
    ) {
        let dim = cfg.dim;
        let mut sgrad = vec![0.0f32; dim];
        {
            let sv = emb.row(src).to_vec();
            let dv = ctx.row_mut(dst);
            let s = sigmoid(vector::dot(&sv, dv));
            let g = lr * (1.0 - s);
            for i in 0..dim {
                sgrad[i] += g * dv[i];
                dv[i] += g * sv[i];
            }
        }
        // Negatives within the destination's partition (type-aware).
        let (p_start, p_len) = self.partitions[self.node_partition[dst]];
        for _ in 0..cfg.negatives {
            let neg = p_start + rng.gen_range(0..p_len);
            if neg == dst {
                continue;
            }
            let sv = emb.row(src).to_vec();
            let nv = ctx.row_mut(neg);
            let s = sigmoid(vector::dot(&sv, nv));
            let g = lr * (0.0 - s);
            for i in 0..dim {
                sgrad[i] += g * nv[i];
                nv[i] += g * sv[i];
            }
        }
        vector::axpy(emb.row_mut(src), 1.0, &sgrad);
    }
}

/// HIN embedding hyper-parameters.
#[derive(Clone, Copy, Debug)]
pub struct HinConfig {
    /// Embedding dimensionality.
    pub dim: usize,
    /// Edge samples (training steps).
    pub samples: usize,
    /// Negative samples per edge.
    pub negatives: usize,
    /// Learning rate.
    pub lr: f32,
    /// Seed.
    pub seed: u64,
}

impl Default for HinConfig {
    fn default() -> Self {
        HinConfig {
            dim: 32,
            samples: 200_000,
            negatives: 4,
            lr: 0.05,
            seed: 31,
        }
    }
}

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two communities of doc/word/user nodes densely connected within and
    /// sparsely across; embedding must separate them.
    fn community_graph(seed: u64) -> (HinGraph, usize, usize) {
        let mut g = HinGraph::new();
        let (_, docs) = g.add_partition("doc", 40);
        let (_, words) = g.add_partition("word", 20);
        let dw = g.add_edge_type("doc-word");
        let mut rng = lrng::seeded(seed);
        for d in 0..40 {
            let community = d % 2;
            for _ in 0..8 {
                let w = if rng.gen::<f32>() < 0.9 {
                    community * 10 + rng.gen_range(0..10usize)
                } else {
                    (1 - community) * 10 + rng.gen_range(0..10usize)
                };
                g.add_edge(dw, docs + d, words + w);
            }
        }
        (g, docs, words)
    }

    #[test]
    fn partitions_allocate_contiguous_ids() {
        let mut g = HinGraph::new();
        let (p0, off0) = g.add_partition("a", 3);
        let (p1, off1) = g.add_partition("b", 2);
        assert_eq!((p0, off0), (0, 0));
        assert_eq!((p1, off1), (1, 3));
        assert_eq!(g.n_nodes(), 5);
        assert_eq!(g.partition_of(4), 1);
        assert_eq!(g.partition_of(2), 0);
    }

    #[test]
    fn embedding_separates_communities() {
        let (g, docs, _) = community_graph(1);
        let emb = g.embed(
            &HinConfig {
                samples: 40_000,
                dim: 16,
                ..Default::default()
            },
            &[],
        );
        let mut intra = Vec::new();
        let mut inter = Vec::new();
        for a in 0..40 {
            for b in (a + 1)..40 {
                let sim = vector::cosine(emb.row(docs + a), emb.row(docs + b));
                if a % 2 == b % 2 {
                    intra.push(sim);
                } else {
                    inter.push(sim);
                }
            }
        }
        let mean = |v: &[f32]| v.iter().sum::<f32>() / v.len() as f32;
        assert!(
            mean(&intra) > mean(&inter) + 0.2,
            "intra {} vs inter {}",
            mean(&intra),
            mean(&inter)
        );
    }

    #[test]
    fn restricting_edge_types_changes_the_space() {
        let mut g = HinGraph::new();
        let (_, docs) = g.add_partition("doc", 10);
        let (_, users) = g.add_partition("user", 4);
        let du = g.add_edge_type("doc-user");
        let dd = g.add_edge_type("doc-doc");
        for d in 0..10 {
            g.add_edge(du, docs + d, users + d % 4);
        }
        g.add_edge(dd, docs, docs + 1);
        let cfg = HinConfig {
            samples: 5_000,
            dim: 8,
            ..Default::default()
        };
        let with_users = g.embed(&cfg, &[du]);
        let without = g.embed(&cfg, &[dd]);
        assert_ne!(with_users.data(), without.data());
    }

    #[test]
    fn empty_edge_selection_with_no_edges_is_benign() {
        let mut g = HinGraph::new();
        g.add_partition("doc", 3);
        g.add_edge_type("unused");
        let emb = g.embed(
            &HinConfig {
                samples: 10,
                dim: 4,
                ..Default::default()
            },
            &[],
        );
        assert_eq!(emb.shape(), (3, 4));
    }

    #[test]
    fn embedding_is_deterministic() {
        let (g, _, _) = community_graph(2);
        let cfg = HinConfig {
            samples: 2_000,
            dim: 8,
            ..Default::default()
        };
        assert_eq!(g.embed(&cfg, &[]).data(), g.embed(&cfg, &[]).data());
    }
}
