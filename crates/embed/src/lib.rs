//! Static embeddings for the `structmine` workspace.
//!
//! The tutorial's pre-PLM methods (WeSTClass, WeSHClass, MetaCat) and several
//! baselines (Word2Vec matching, PTE, metapath2vec, Doc2Vec) are built on
//! *static* representations. This crate implements them from scratch:
//!
//! * [`sgns`] — skip-gram with negative sampling over a corpus.
//! * [`docvec`] — document vectors: TF-IDF-weighted averages and PV-DBOW
//!   trained vectors (the Doc2Vec baseline).
//! * [`vmf`] — von Mises–Fisher fitting and sampling (WeSTClass's pseudo
//!   document generator).
//! * [`hin`] — heterogeneous information network embedding by typed edge
//!   sampling (MetaCat's joint word/doc/label/metadata space, and the
//!   PTE/ESim/metapath2vec-style baselines).

pub mod docvec;
pub mod hin;
pub mod sgns;
pub mod vmf;

pub use hin::{HinConfig, HinGraph};
pub use sgns::{Sgns, SgnsConfig, WordVectors};
pub use vmf::VonMisesFisher;
