//! Baselines appearing across the tutorial's evaluation tables.
//!
//! * [`ir_tfidf`] — retrieve by cosine between a document's TF-IDF vector
//!   and the seed keywords ("IR with tf-idf").
//! * [`dataless`] — label-name / document similarity in the static
//!   embedding space (Dataless / Word2Vec rows).
//! * [`topic_model`] — unsupervised spherical k-means topics on TF-IDF-
//!   weighted embeddings, aligned to classes by seed similarity (the
//!   "Topic Model" row).
//! * [`bert_simple_match`] — cosine between average-pooled PLM document
//!   representations and label-name representations ("BERT w. simple match").
//! * [`zero_shot_entail`] — NLI entailment between document and label
//!   description (Hier-0Shot-TC / ZeroShot-Entail rows).
//! * [`supervised`] — an MLP trained on the gold-labeled training split
//!   over the given features (the "Supervised" upper-bound rows).

use crate::common;
use structmine_embed::WordVectors;
use structmine_linalg::exec::{par_map_chunks, ExecPolicy};
use structmine_linalg::{vector, Matrix};
use structmine_plm::MiniPlm;
use structmine_text::tfidf::{sparse_cosine, TfIdf};
use structmine_text::vocab::TokenId;
use structmine_text::{Dataset, Supervision};

/// IR with TF-IDF: score each class by cosine between the document vector
/// and the class's seed-keyword pseudo-query.
pub fn ir_tfidf(dataset: &Dataset, sup: &Supervision) -> Vec<usize> {
    let seeds = common::seed_tokens(dataset, sup);
    let tfidf = TfIdf::fit(&dataset.corpus);
    let queries: Vec<_> = seeds.iter().map(|s| tfidf.vectorize(s)).collect();
    par_map_chunks(ExecPolicy::global(), &dataset.corpus.docs, |_, doc| {
        let dv = tfidf.vectorize(&doc.tokens);
        let scores: Vec<f32> = queries.iter().map(|q| sparse_cosine(&dv, q)).collect();
        vector::argmax(&scores).unwrap_or(0)
    })
}

/// Dataless / Word2Vec matching: nearest seed prototype in embedding space.
pub fn dataless(dataset: &Dataset, sup: &Supervision, wv: &WordVectors) -> Vec<usize> {
    let seeds = common::seed_tokens(dataset, sup);
    let prototypes = common::seed_prototypes(&seeds, wv);
    let features = common::embedding_features(dataset, wv);
    common::nearest_prototype(&features, &prototypes)
}

/// Unsupervised topic model: spherical k-means on embedding features, with
/// clusters mapped to classes by prototype similarity of their centroids.
pub fn topic_model(
    dataset: &Dataset,
    sup: &Supervision,
    wv: &WordVectors,
    seed: u64,
) -> Vec<usize> {
    let k = dataset.n_classes();
    let features = common::embedding_features(dataset, wv);
    let result = structmine_cluster::spherical_kmeans(&features, k, seed, 50, None);
    let seeds = common::seed_tokens(dataset, sup);
    let prototypes = common::seed_prototypes(&seeds, wv);
    // Greedy cluster -> class mapping by centroid/prototype cosine (no
    // Hungarian here: the paper's topic-model baseline is this crude).
    let mapping: Vec<usize> = (0..k)
        .map(|cluster| {
            let scores: Vec<f32> = (0..k)
                .map(|c| vector::cosine(result.centroids.row(cluster), prototypes.row(c)))
                .collect();
            vector::argmax(&scores).unwrap_or(0)
        })
        .collect();
    result.assignments.iter().map(|&a| mapping[a]).collect()
}

/// BERT with simple matching: cosine between average-pooled document
/// representations and the label-name contextual representations.
pub fn bert_simple_match(dataset: &Dataset, plm: &MiniPlm) -> Vec<usize> {
    let names = dataset.label_name_tokens();
    let mut prototypes = Matrix::zeros(names.len(), plm.config.d_model);
    for (c, name) in names.iter().enumerate() {
        let v = plm.mean_embed(name);
        prototypes.row_mut(c).copy_from_slice(&v);
    }
    let features = common::plm_features(dataset, plm);
    common::nearest_prototype(&features, &prototypes)
}

/// Zero-shot entailment: argmax over classes of
/// `P(doc entails "<label description>")` under the PLM's NLI head.
pub fn zero_shot_entail(dataset: &Dataset, plm: &MiniPlm) -> Vec<usize> {
    zero_shot_entail_with(dataset, plm, ExecPolicy::global())
}

/// [`zero_shot_entail`] under an explicit execution policy: one batched
/// entailment matrix (memoized through the global artifact store), then a
/// per-document argmax.
pub fn zero_shot_entail_with(dataset: &Dataset, plm: &MiniPlm, policy: &ExecPolicy) -> Vec<usize> {
    let hyps = label_description_tokens(dataset);
    let stage = structmine_plm::artifacts::NliEntail {
        model: plm,
        corpus: &dataset.corpus,
        hypotheses: &hyps,
        exec: *policy,
    };
    let scores = structmine_store::global().run(&stage);
    (0..scores.rows())
        .map(|i| vector::argmax(scores.row(i)).unwrap_or(0))
        .collect()
}

/// Tokenized label descriptions (falling back to names when a description
/// word is out of vocabulary).
pub fn label_description_tokens(dataset: &Dataset) -> Vec<Vec<TokenId>> {
    dataset
        .labels
        .descriptions
        .iter()
        .enumerate()
        .map(|(c, desc)| {
            let toks = structmine_text::tokenize::encode(desc, &dataset.corpus.vocab)
                .into_iter()
                .filter(|&t| t != structmine_text::vocab::UNK)
                .collect::<Vec<_>>();
            if toks.is_empty() {
                dataset.label_name_tokens()[c].clone()
            } else {
                toks
            }
        })
        .collect()
}

/// Supervised upper bound: an MLP on the given features, trained on the
/// gold labels of the training split, predicting every document.
pub fn supervised(dataset: &Dataset, features: &Matrix, seed: u64) -> Vec<usize> {
    let train_x = features.select_rows(&dataset.train_idx);
    let train_y: Vec<usize> = dataset
        .train_idx
        .iter()
        .map(|&i| dataset.corpus.docs[i].labels[0])
        .collect();
    let mut clf = structmine_nn::classifiers::MlpClassifier::new(
        features.cols(),
        64,
        dataset.n_classes(),
        seed,
    );
    let targets = structmine_nn::classifiers::one_hot(&train_y, dataset.n_classes(), 0.05);
    clf.fit(
        &train_x,
        &targets,
        &structmine_nn::classifiers::TrainConfig {
            epochs: 40,
            ..Default::default()
        },
    );
    clf.predict(features)
}

#[cfg(test)]
mod tests {
    use super::*;
    use structmine_embed::{Sgns, SgnsConfig};
    use structmine_eval::accuracy;
    use structmine_text::synth::recipes;

    fn eval(dataset: &Dataset, preds: &[usize]) -> f32 {
        accuracy(&common::test_slice(dataset, preds), &dataset.test_gold())
    }

    #[test]
    fn ir_tfidf_beats_chance_with_keywords() {
        let d = recipes::agnews(0.1, 1).unwrap();
        let acc = eval(&d, &ir_tfidf(&d, &d.supervision_keywords()));
        assert!(acc > 0.5, "IR-tfidf acc {acc}");
    }

    #[test]
    fn dataless_beats_ir_tfidf_shape() {
        let d = recipes::agnews(0.1, 4).unwrap();
        let wv = Sgns::train(
            &d.corpus,
            &SgnsConfig {
                epochs: 3,
                dim: 24,
                ..Default::default()
            },
        );
        let ir = eval(&d, &ir_tfidf(&d, &d.supervision_names()));
        let dl = eval(&d, &dataless(&d, &d.supervision_names(), &wv));
        assert!(dl > 0.5, "dataless acc {dl}");
        // Embedding matching generalizes beyond literal keyword overlap.
        assert!(
            dl + 0.12 >= ir,
            "dataless {dl} should not trail IR {ir} badly"
        );
    }

    #[test]
    fn supervised_is_a_strong_upper_bound() {
        let d = recipes::agnews(0.1, 3).unwrap();
        let wv = Sgns::train(
            &d.corpus,
            &SgnsConfig {
                epochs: 3,
                dim: 24,
                ..Default::default()
            },
        );
        let features = common::embedding_features(&d, &wv);
        let acc = eval(&d, &supervised(&d, &features, 5));
        assert!(acc > 0.9, "supervised acc {acc}");
    }

    #[test]
    fn topic_model_runs_and_beats_chance() {
        let d = recipes::agnews(0.1, 4).unwrap();
        let wv = Sgns::train(
            &d.corpus,
            &SgnsConfig {
                epochs: 3,
                dim: 24,
                ..Default::default()
            },
        );
        let acc = eval(&d, &topic_model(&d, &d.supervision_keywords(), &wv, 9));
        assert!(acc > 0.3, "topic model acc {acc}");
    }

    #[test]
    fn label_description_tokens_are_in_vocab() {
        let d = recipes::dbpedia(0.05, 5).unwrap();
        for toks in label_description_tokens(&d) {
            assert!(!toks.is_empty());
            assert!(toks.iter().all(|&t| (t as usize) < d.corpus.vocab.len()));
        }
    }
}
