//! MetaCat — minimally supervised categorization of text with metadata
//! (Zhang et al., SIGIR 2020).
//!
//! The corpus-with-metadata is modeled generatively: global metadata (users,
//! authors, products/venues) *causes* documents, local metadata (tags)
//! *describes* them. All entities — words, documents, labels, users, tags,
//! venues — are embedded into one space by maximizing the likelihood of the
//! observed edges (implemented as typed-edge skip-gram in
//! [`structmine_embed::hin`]). Training data is then **synthesized** from
//! the generative model: for each label, pseudo documents are sampled from
//! words near the label embedding, and a classifier is trained on the few
//! real labeled documents plus the synthesized ones.

use crate::error::MethodError;
use structmine_embed::hin::{HinConfig, HinGraph};
use structmine_linalg::exec::{par_map_chunks, ExecPolicy};
use structmine_linalg::{rng as lrng, stats, vector, Matrix};
use structmine_nn::classifiers::{MlpClassifier, TrainConfig};
use structmine_text::{Dataset, Supervision};

/// MetaCat hyper-parameters.
#[derive(Clone, Copy, Debug)]
pub struct MetaCat {
    /// Embedding dimensionality.
    pub dim: usize,
    /// HIN edge samples.
    pub samples: usize,
    /// Pseudo documents synthesized per label.
    pub synth_per_class: usize,
    /// Words per synthesized document.
    pub synth_len: usize,
    /// Softmax temperature for word-given-label sampling.
    pub temp: f32,
    /// Classifier hidden width.
    pub hidden: usize,
    /// RNG seed.
    pub seed: u64,
    /// Execution policy for the document featurization (thread count;
    /// output is bitwise identical for any value).
    pub exec: ExecPolicy,
}

impl Default for MetaCat {
    fn default() -> Self {
        MetaCat {
            dim: 32,
            samples: 150_000,
            synth_per_class: 60,
            synth_len: 30,
            temp: 8.0,
            hidden: 32,
            seed: 121,
            exec: ExecPolicy::default(),
        }
    }
}

/// Which signals participate in the embedding (for the paper's baselines).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SignalSet {
    /// Text + metadata + labels (full MetaCat).
    Full,
    /// Doc-word edges only (PTE-style text baseline).
    TextOnly,
    /// Metadata edges only (metapath2vec/ESim-style graph baseline).
    GraphOnly,
}

impl structmine_store::StableHash for MetaCat {
    /// Every hyper-parameter except `exec`: this method runs no PLM
    /// inference, so neither the thread count nor the precision tier can
    /// change its outputs and cached runs stay valid across both.
    fn stable_hash(&self, h: &mut structmine_store::StableHasher) {
        self.dim.stable_hash(h);
        self.samples.stable_hash(h);
        self.synth_per_class.stable_hash(h);
        self.synth_len.stable_hash(h);
        self.temp.stable_hash(h);
        self.hidden.stable_hash(h);
        self.seed.stable_hash(h);
    }
}

/// MetaCat outputs.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct MetaCatOutput {
    /// Final per-document predictions.
    pub predictions: Vec<usize>,
    /// Number of HIN nodes embedded.
    pub n_nodes: usize,
}

impl MetaCat {
    /// Run MetaCat with document-level supervision. Errors when `sup` is
    /// not labeled documents.
    pub fn run(&self, dataset: &Dataset, sup: &Supervision) -> Result<MetaCatOutput, MethodError> {
        self.run_with_signals(dataset, sup, SignalSet::Full)
    }

    /// Run with a restricted signal set (baseline rows), memoized through
    /// the global artifact store (keyed on dataset, supervision, signal
    /// set, and every hyper-parameter).
    pub fn run_with_signals(
        &self,
        dataset: &Dataset,
        sup: &Supervision,
        signals: SignalSet,
    ) -> Result<MetaCatOutput, MethodError> {
        use structmine_store::StableHash;
        let labeled = sup
            .labeled_docs()
            .ok_or(MethodError::NeedsLabeledDocs { method: "MetaCat" })?;
        Ok(crate::pipeline::run_memoized(
            "metacat/predict",
            |h| {
                h.write_u128(dataset.fingerprint());
                sup.stable_hash(h);
                h.write_u64(match signals {
                    SignalSet::Full => 0,
                    SignalSet::TextOnly => 1,
                    SignalSet::GraphOnly => 2,
                });
                self.stable_hash(h);
            },
            || self.run_validated(dataset, labeled, signals),
        ))
    }

    /// Run with a restricted signal set, bypassing the artifact store.
    pub fn run_with_signals_uncached(
        &self,
        dataset: &Dataset,
        sup: &Supervision,
        signals: SignalSet,
    ) -> Result<MetaCatOutput, MethodError> {
        let labeled = sup
            .labeled_docs()
            .ok_or(MethodError::NeedsLabeledDocs { method: "MetaCat" })?;
        Ok(self.run_validated(dataset, labeled, signals))
    }

    /// The algorithm proper, over pre-validated labeled documents.
    fn run_validated(
        &self,
        dataset: &Dataset,
        labeled: &[(usize, usize)],
        signals: SignalSet,
    ) -> MetaCatOutput {
        let _stage = structmine_store::context::stage_guard("metacat/run");
        let n_classes = dataset.n_classes();
        let corpus = &dataset.corpus;
        let n_docs = corpus.len();
        let vocab_len = corpus.vocab.len();

        // ------------------------------------------------------------------
        // Build the typed graph.
        // ------------------------------------------------------------------
        let graph_span = structmine_store::context::stage_guard("metacat/graph-embed");
        let mut g = HinGraph::new();
        let (_, docs0) = g.add_partition("doc", n_docs);
        let (_, words0) = g.add_partition("word", vocab_len);
        let (_, labels0) = g.add_partition("label", n_classes);
        let meta = dataset.meta;
        let (users0, tags0, venues0, authors0) = (
            if meta.n_users > 0 {
                Some(g.add_partition("user", meta.n_users).1)
            } else {
                None
            },
            if meta.n_tags > 0 {
                Some(g.add_partition("tag", meta.n_tags).1)
            } else {
                None
            },
            if meta.n_venues > 0 {
                Some(g.add_partition("venue", meta.n_venues).1)
            } else {
                None
            },
            if meta.n_authors > 0 {
                Some(g.add_partition("author", meta.n_authors).1)
            } else {
                None
            },
        );

        let dw = g.add_edge_type("doc-word");
        let dmeta = g.add_edge_type("doc-meta");
        let dlabel = g.add_edge_type("doc-label");

        for (i, doc) in corpus.docs.iter().enumerate() {
            for &t in &doc.tokens {
                if !structmine_text::Vocab::is_special(t) {
                    g.add_edge(dw, docs0 + i, words0 + t as usize);
                }
            }
            if let (Some(u0), Some(u)) = (users0, doc.user) {
                g.add_edge(dmeta, docs0 + i, u0 + u);
            }
            if let Some(t0) = tags0 {
                for &t in &doc.tags {
                    g.add_edge(dmeta, docs0 + i, t0 + t);
                }
            }
            if let (Some(v0), Some(v)) = (venues0, doc.venue) {
                g.add_edge(dmeta, docs0 + i, v0 + v);
            }
            if let Some(a0) = authors0 {
                for &a in &doc.authors {
                    g.add_edge(dmeta, docs0 + i, a0 + a);
                }
            }
        }
        // Label supervision edges: labeled docs, their words, and the label
        // name words anchor each label embedding.
        let names = dataset.label_name_tokens();
        for &(i, c) in labeled {
            g.add_edge(dlabel, labels0 + c, docs0 + i);
        }
        for (c, name) in names.iter().enumerate() {
            for &t in name {
                g.add_edge(dlabel, labels0 + c, words0 + t as usize);
            }
        }

        let edge_types: Vec<usize> = match signals {
            SignalSet::Full => vec![dw, dmeta, dlabel],
            SignalSet::TextOnly => vec![dw, dlabel],
            SignalSet::GraphOnly => vec![dmeta, dlabel],
        };
        let emb = g.embed(
            &HinConfig {
                dim: self.dim,
                samples: self.samples,
                seed: self.seed,
                ..Default::default()
            },
            &edge_types,
        );

        drop(graph_span);
        let _sub = structmine_store::context::stage_guard("metacat/train");

        // ------------------------------------------------------------------
        // Featurize documents consistently: every document (real, labeled or
        // synthesized) is the mean of its word embeddings in the joint
        // space, blended with its own doc-node embedding. Using one geometry
        // for training and inference is what makes the synthesized examples
        // transferable.
        // ------------------------------------------------------------------
        let doc_feature = |i: usize| -> Vec<f32> {
            let mut acc = vec![0.0f32; self.dim];
            let mut count = 0usize;
            for &t in &corpus.docs[i].tokens {
                if !structmine_text::Vocab::is_special(t) {
                    vector::axpy(&mut acc, 1.0, emb.row(words0 + t as usize));
                    count += 1;
                }
            }
            if count > 0 {
                vector::scale(&mut acc, 1.0 / count as f32);
            }
            // Blend in the doc node itself, which carries the metadata signal.
            vector::axpy(&mut acc, 1.0, emb.row(docs0 + i));
            vector::scale(&mut acc, 0.5);
            acc
        };

        // Label prototype: labeled documents' features + name-word vectors.
        let names = dataset.label_name_tokens();
        let mut label_vecs: Vec<Vec<f32>> = Vec::with_capacity(n_classes);
        for (c, name_toks) in names.iter().enumerate() {
            let mut acc = emb.row(labels0 + c).to_vec();
            let mut weight = 1.0f32;
            for &(i, lc) in labeled {
                if lc == c {
                    vector::axpy(&mut acc, 1.0, &doc_feature(i));
                    weight += 1.0;
                }
            }
            for &t in name_toks {
                vector::axpy(&mut acc, 1.0, emb.row(words0 + t as usize));
                weight += 1.0;
            }
            vector::scale(&mut acc, 1.0 / weight);
            label_vecs.push(acc);
        }

        // ------------------------------------------------------------------
        // Synthesize training documents from the generative model.
        // ------------------------------------------------------------------
        let mut rng = lrng::seeded(self.seed ^ 0xCA7);
        let mut train_x = Vec::<f32>::new();
        let mut train_y = Vec::new();
        let real_words_start = structmine_text::vocab::N_SPECIAL;
        for (c, label_vec) in label_vecs.iter().enumerate() {
            // Word distribution given the label: softmax over similarity.
            let sims: Vec<f32> = (real_words_start..vocab_len)
                .map(|w| {
                    if corpus.vocab.count(w as u32) == 0 {
                        f32::NEG_INFINITY
                    } else {
                        vector::cosine(label_vec, emb.row(words0 + w)) * self.temp
                    }
                })
                .collect();
            let probs = stats::softmax(&sims);
            for _ in 0..self.synth_per_class {
                let mut acc = vec![0.0f32; self.dim];
                for _ in 0..self.synth_len {
                    let w = real_words_start + lrng::sample_categorical(&mut rng, &probs);
                    vector::axpy(&mut acc, 1.0 / self.synth_len as f32, emb.row(words0 + w));
                }
                // Synthesized docs have no doc node; blend with the label
                // prototype to mirror the doc-feature geometry.
                vector::axpy(&mut acc, 1.0, label_vec);
                vector::scale(&mut acc, 0.5);
                train_x.extend_from_slice(&acc);
                train_y.push(c);
            }
        }
        // Real labeled documents join the training set.
        for &(i, c) in labeled {
            train_x.extend_from_slice(&doc_feature(i));
            train_y.push(c);
        }

        let x = Matrix::from_vec(train_y.len(), self.dim, train_x);
        let mut clf = MlpClassifier::new(self.dim, self.hidden, n_classes, self.seed);
        let targets = structmine_nn::classifiers::one_hot(&train_y, n_classes, 0.1);
        clf.fit(
            &x,
            &targets,
            &TrainConfig {
                epochs: 30,
                seed: self.seed,
                ..Default::default()
            },
        );

        // Predict every document from its (consistent) representation. Each
        // feature row depends only on the frozen embedding, so the rows are
        // computed under the policy and written back in document order.
        let idx: Vec<usize> = (0..n_docs).collect();
        let rows = par_map_chunks(&self.exec, &idx, |_, &i| doc_feature(i));
        let mut doc_features = Matrix::zeros(n_docs, self.dim);
        for (i, row) in rows.iter().enumerate() {
            doc_features.row_mut(i).copy_from_slice(row);
        }
        let predictions = clf.predict(&doc_features);
        MetaCatOutput {
            predictions,
            n_nodes: g.n_nodes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use structmine_eval::accuracy;
    use structmine_text::synth::recipes;

    fn acc(d: &Dataset, preds: &[usize]) -> f32 {
        accuracy(&crate::common::test_slice(d, preds), &d.test_gold())
    }

    fn small() -> Dataset {
        recipes::github_bio(0.3, 81).unwrap()
    }

    #[test]
    fn metacat_beats_chance_with_few_labels() {
        let d = small();
        let sup = d.supervision_docs(3, 1);
        let out = MetaCat {
            samples: 60_000,
            ..Default::default()
        }
        .run(&d, &sup)
        .unwrap();
        let a = acc(&d, &out.predictions);
        assert!(a > 0.4, "MetaCat acc {a}");
        assert!(out.n_nodes > d.corpus.len());
    }

    #[test]
    fn metadata_signals_help_over_text_only() {
        let d = small();
        let sup = d.supervision_docs(3, 2);
        let cfg = MetaCat {
            samples: 60_000,
            ..Default::default()
        };
        let full = acc(
            &d,
            &cfg.run_with_signals(&d, &sup, SignalSet::Full)
                .unwrap()
                .predictions,
        );
        let text = acc(
            &d,
            &cfg.run_with_signals(&d, &sup, SignalSet::TextOnly)
                .unwrap()
                .predictions,
        );
        assert!(
            full >= text - 0.05,
            "metadata should not hurt: full {full} vs text-only {text}"
        );
    }

    #[test]
    fn graph_only_still_carries_signal() {
        let d = small();
        let sup = d.supervision_docs(3, 3);
        let cfg = MetaCat {
            samples: 60_000,
            ..Default::default()
        };
        let graph = acc(
            &d,
            &cfg.run_with_signals(&d, &sup, SignalSet::GraphOnly)
                .unwrap()
                .predictions,
        );
        assert!(graph > 0.25, "graph-only acc {graph}");
    }

    #[test]
    fn requires_doc_supervision() {
        let d = small();
        let err = MetaCat::default()
            .run(&d, &d.supervision_names())
            .unwrap_err();
        assert!(
            matches!(err, MethodError::NeedsLabeledDocs { .. }),
            "unexpected error: {err}"
        );
    }
}
