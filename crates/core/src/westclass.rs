//! WeSTClass — weakly-supervised neural text classification
//! (Meng, Shen, Zhang & Han, CIKM 2018).
//!
//! Pipeline, following the paper:
//! 1. **Seed interpretation** — map the supervision to a keyword set per
//!    class: label names and keywords are expanded with embedding
//!    neighbours; labeled documents contribute their top TF-IDF terms.
//! 2. **Pseudo-document generation** — fit a von Mises–Fisher distribution
//!    per class on the keyword embeddings; each pseudo document samples a
//!    direction from the vMF and draws words from a softmax over similarity
//!    to that direction, mixed with a background unigram distribution.
//! 3. **Pre-training** — train a neural classifier on pseudo documents with
//!    label smoothing.
//! 4. **Self-training** — refine on the unlabeled corpus with the
//!    `t ∝ p²/f` target distribution until assignments stabilize.

use crate::common;
use rand::Rng;
use structmine_embed::vmf::VonMisesFisher;
use structmine_embed::WordVectors;
use structmine_linalg::exec::{par_map_chunks, ExecPolicy};
use structmine_linalg::{rng as lrng, stats, vector, Matrix};
use structmine_nn::classifiers::{MlpClassifier, TrainConfig};
use structmine_nn::selftrain::{self, SelfTrainConfig};
use structmine_text::tfidf::TfIdf;
use structmine_text::vocab::{TokenId, Vocab};
use structmine_text::{Dataset, Supervision};

/// Classifier backbone: the paper evaluates WeSTClass-CNN and
/// WeSTClass-HAN variants.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Backbone {
    /// MLP over pooled document features (stands in for the CNN variant).
    #[default]
    Cnn,
    /// Attention-pooling sequence classifier (the HAN variant).
    Han,
}

/// WeSTClass hyper-parameters.
#[derive(Clone, Copy, Debug)]
pub struct WeSTClass {
    /// Classifier backbone (CNN-style pooled MLP or HAN-style attention).
    pub backbone: Backbone,
    /// Keywords kept per class after seed interpretation.
    pub keywords_per_class: usize,
    /// Pseudo documents generated per class.
    pub pseudo_per_class: usize,
    /// Length of each pseudo document.
    pub pseudo_len: usize,
    /// Background (corpus unigram) mixing weight in pseudo documents.
    pub background_alpha: f32,
    /// Softmax temperature on direction/word similarity.
    pub similarity_temp: f32,
    /// Label-smoothing mass spread over other classes during pre-training.
    pub smoothing: f32,
    /// Hidden width of the classifier.
    pub hidden: usize,
    /// Run the self-training stage.
    pub self_train: bool,
    /// RNG seed.
    pub seed: u64,
    /// Execution policy for document featurization (thread count; output
    /// is bitwise identical for any value).
    pub exec: ExecPolicy,
}

impl Default for WeSTClass {
    fn default() -> Self {
        WeSTClass {
            backbone: Backbone::Cnn,
            keywords_per_class: 10,
            pseudo_per_class: 80,
            pseudo_len: 40,
            background_alpha: 0.2,
            similarity_temp: 6.0,
            smoothing: 0.2,
            hidden: 32,
            self_train: true,
            seed: 51,
            exec: ExecPolicy::default(),
        }
    }
}

impl structmine_store::StableHash for WeSTClass {
    /// Every hyper-parameter except `exec`: this method runs no PLM
    /// inference, so neither the thread count nor the precision tier can
    /// change its outputs and cached runs stay valid across both.
    fn stable_hash(&self, h: &mut structmine_store::StableHasher) {
        h.write_u64(match self.backbone {
            Backbone::Cnn => 0,
            Backbone::Han => 1,
        });
        self.keywords_per_class.stable_hash(h);
        self.pseudo_per_class.stable_hash(h);
        self.pseudo_len.stable_hash(h);
        self.background_alpha.stable_hash(h);
        self.similarity_temp.stable_hash(h);
        self.smoothing.stable_hash(h);
        self.hidden.stable_hash(h);
        self.self_train.stable_hash(h);
        self.seed.stable_hash(h);
    }
}

/// WeSTClass outputs, including the no-self-training ablation.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct WeSTClassOutput {
    /// Final per-document predictions.
    pub predictions: Vec<usize>,
    /// Predictions before self-training (the NoST ablation row).
    pub pretrain_predictions: Vec<usize>,
    /// The interpreted keyword set per class.
    pub keywords: Vec<Vec<TokenId>>,
}

impl WeSTClass {
    /// Run WeSTClass on a flat dataset, memoized through the global
    /// artifact store (keyed on dataset, supervision, word vectors, and
    /// every hyper-parameter).
    pub fn run(&self, dataset: &Dataset, sup: &Supervision, wv: &WordVectors) -> WeSTClassOutput {
        use structmine_store::StableHash;
        crate::pipeline::run_memoized(
            "westclass/predict",
            |h| {
                h.write_u128(dataset.fingerprint());
                sup.stable_hash(h);
                wv.stable_hash(h);
                self.stable_hash(h);
            },
            || self.run_uncached(dataset, sup, wv),
        )
    }

    /// Run WeSTClass on a flat dataset, bypassing the artifact store.
    pub fn run_uncached(
        &self,
        dataset: &Dataset,
        sup: &Supervision,
        wv: &WordVectors,
    ) -> WeSTClassOutput {
        let _stage = structmine_store::context::stage_guard("westclass/run");
        let n_classes = sup.n_classes().max(dataset.n_classes());
        let keywords = structmine_store::context::with_stage_label("westclass/seeds", || {
            self.interpret_seeds(dataset, sup, wv, n_classes)
        });
        let _sub = structmine_store::context::stage_guard("westclass/train");

        // Fit one vMF per class on keyword embeddings.
        let vmfs: Vec<VonMisesFisher> = keywords
            .iter()
            .map(|kw| {
                let vecs: Vec<&[f32]> = kw.iter().map(|&t| wv.get(t)).collect();
                VonMisesFisher::fit(&vecs)
            })
            .collect();

        // Generate pseudo documents.
        let tfidf = TfIdf::fit(&dataset.corpus);
        let mut rng = lrng::seeded(self.seed);
        let unigram = dataset.corpus.vocab.unigram_weights(1.0);

        if self.backbone == Backbone::Han {
            let mut pseudo_seqs = Vec::with_capacity(n_classes * self.pseudo_per_class);
            let mut pseudo_labels = Vec::new();
            for (c, vmf) in vmfs.iter().enumerate() {
                for _ in 0..self.pseudo_per_class {
                    let doc = self.gen_pseudo_doc(vmf, wv, &unigram, &mut rng);
                    pseudo_seqs.push(token_sequence(&doc, wv, 40));
                    pseudo_labels.push(c);
                }
            }
            return self.run_han(
                dataset,
                sup,
                wv,
                keywords,
                pseudo_seqs,
                pseudo_labels,
                n_classes,
            );
        }

        let mut pseudo_features = Matrix::zeros(n_classes * self.pseudo_per_class, wv.dim());
        let mut pseudo_labels = Vec::with_capacity(n_classes * self.pseudo_per_class);
        let mut row = 0;
        for (c, vmf) in vmfs.iter().enumerate() {
            for _ in 0..self.pseudo_per_class {
                let doc = self.gen_pseudo_doc(vmf, wv, &unigram, &mut rng);
                let weights: Vec<f32> = doc.iter().map(|&t| tfidf.idf(t)).collect();
                let v = wv.doc_vector(&doc, Some(&weights));
                pseudo_features.row_mut(row).copy_from_slice(&v);
                pseudo_labels.push(c);
                row += 1;
            }
        }

        // Pre-train the classifier on pseudo documents.
        let mut clf = MlpClassifier::new(wv.dim(), self.hidden, n_classes, self.seed ^ 0xbeef);
        let targets =
            structmine_nn::classifiers::one_hot(&pseudo_labels, n_classes, self.smoothing);
        clf.fit(
            &pseudo_features,
            &targets,
            &TrainConfig {
                epochs: 30,
                seed: self.seed,
                ..Default::default()
            },
        );

        // Document-level supervision also contributes real labeled examples.
        let features = common::embedding_features(dataset, wv);
        if let Some(pairs) = sup.labeled_docs() {
            if !pairs.is_empty() {
                let idx: Vec<usize> = pairs.iter().map(|&(i, _)| i).collect();
                let labels: Vec<usize> = pairs.iter().map(|&(_, c)| c).collect();
                let x = features.select_rows(&idx);
                let t = structmine_nn::classifiers::one_hot(&labels, n_classes, 0.05);
                clf.fit(
                    &x,
                    &t,
                    &TrainConfig {
                        epochs: 20,
                        seed: self.seed ^ 1,
                        ..Default::default()
                    },
                );
            }
        }

        let pretrain_predictions = clf.predict(&features);

        if self.self_train {
            selftrain::self_train(
                &mut clf,
                &features,
                &SelfTrainConfig {
                    seed: self.seed ^ 2,
                    ..Default::default()
                },
            );
        }
        let predictions = clf.predict(&features);

        WeSTClassOutput {
            predictions,
            pretrain_predictions,
            keywords,
        }
    }

    /// Interpret the supervision as a keyword list per class.
    fn interpret_seeds(
        &self,
        dataset: &Dataset,
        sup: &Supervision,
        wv: &WordVectors,
        n_classes: usize,
    ) -> Vec<Vec<TokenId>> {
        match sup {
            Supervision::LabelNames(seeds) | Supervision::Keywords(seeds) => seeds
                .iter()
                .map(|seed| {
                    let mut kw = seed.clone();
                    let center = wv.mean_vector(seed);
                    for (t, _) in wv.nearest(&center, self.keywords_per_class * 2, seed) {
                        if kw.len() >= self.keywords_per_class {
                            break;
                        }
                        if !kw.contains(&t) {
                            kw.push(t);
                        }
                    }
                    kw
                })
                .collect(),
            Supervision::LabeledDocs(pairs) => {
                // Top TF-IDF terms of each class's labeled documents.
                let tfidf = TfIdf::fit(&dataset.corpus);
                let mut scores: Vec<std::collections::HashMap<TokenId, f32>> =
                    vec![std::collections::HashMap::new(); n_classes];
                for &(i, c) in pairs {
                    for (t, w) in tfidf.vectorize(&dataset.corpus.docs[i].tokens) {
                        *scores[c].entry(t).or_insert(0.0) += w;
                    }
                }
                scores
                    .into_iter()
                    .map(|m| {
                        let mut v: Vec<(TokenId, f32)> = m.into_iter().collect();
                        v.sort_by(|a, b| {
                            b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal)
                        });
                        v.into_iter()
                            .take(self.keywords_per_class)
                            .map(|(t, _)| t)
                            .collect()
                    })
                    .collect()
            }
        }
    }

    /// Sample one pseudo document from a class vMF.
    fn gen_pseudo_doc(
        &self,
        vmf: &VonMisesFisher,
        wv: &WordVectors,
        unigram: &[f32],
        rng: &mut rand::rngs::StdRng,
    ) -> Vec<TokenId> {
        let direction = vmf.sample(rng);
        // Candidate words: nearest to the sampled direction; sampling weights
        // are a temperature softmax over cosine similarity.
        let candidates = wv.nearest(&direction, 50, &[]);
        let sims: Vec<f32> = candidates
            .iter()
            .map(|&(_, s)| s * self.similarity_temp)
            .collect();
        let probs = stats::softmax(&sims);
        let mut doc = Vec::with_capacity(self.pseudo_len);
        for _ in 0..self.pseudo_len {
            if rng.gen::<f32>() < self.background_alpha {
                doc.push(lrng::sample_categorical(rng, unigram) as TokenId);
            } else {
                let pick = lrng::sample_categorical(rng, &probs);
                doc.push(candidates[pick].0);
            }
        }
        doc
    }
}

/// Token-embedding sequence for a document (rows = first `cap` tokens).
fn token_sequence(tokens: &[TokenId], wv: &WordVectors, cap: usize) -> structmine_linalg::Matrix {
    let kept: Vec<&[f32]> = tokens
        .iter()
        .filter(|t| !Vocab::is_special(**t))
        .take(cap)
        .map(|&t| wv.get(t))
        .collect();
    if kept.is_empty() {
        return structmine_linalg::Matrix::zeros(0, wv.dim());
    }
    structmine_linalg::Matrix::from_rows(&kept)
}

impl WeSTClass {
    /// The HAN-backbone pipeline: attention-pooling classifier pre-trained
    /// on pseudo-document sequences, then self-trained on the corpus.
    #[allow(clippy::too_many_arguments)]
    fn run_han(
        &self,
        dataset: &Dataset,
        sup: &Supervision,
        wv: &WordVectors,
        keywords: Vec<Vec<TokenId>>,
        pseudo_seqs: Vec<structmine_linalg::Matrix>,
        pseudo_labels: Vec<usize>,
        n_classes: usize,
    ) -> WeSTClassOutput {
        let mut clf =
            structmine_nn::AttnPoolClassifier::new(wv.dim(), 24, n_classes, self.seed ^ 0x4a4);
        let targets =
            structmine_nn::classifiers::one_hot(&pseudo_labels, n_classes, self.smoothing);
        clf.fit(&pseudo_seqs, &targets, 20, 2e-2, self.seed);

        // Building the per-document embedding sequences is a pure lookup;
        // share the documents across the policy's threads.
        let real_seqs: Vec<structmine_linalg::Matrix> =
            par_map_chunks(&self.exec, &dataset.corpus.docs, |_, doc| {
                token_sequence(&doc.tokens, wv, 40)
            });

        // Document-level supervision adds real labeled sequences.
        if let Some(pairs) = sup.labeled_docs() {
            if !pairs.is_empty() {
                let seqs: Vec<structmine_linalg::Matrix> =
                    pairs.iter().map(|&(i, _)| real_seqs[i].clone()).collect();
                let labels: Vec<usize> = pairs.iter().map(|&(_, c)| c).collect();
                let t = structmine_nn::classifiers::one_hot(&labels, n_classes, 0.05);
                clf.fit(&seqs, &t, 15, 1e-2, self.seed ^ 1);
            }
        }

        let pretrain_predictions = clf.predict(&real_seqs);
        if self.self_train {
            // Self-training with the p²/f target distribution, 5 rounds.
            for round in 0..5u64 {
                let probs = clf.predict_proba(&real_seqs);
                let targets = structmine_nn::selftrain::target_distribution(&probs);
                clf.fit(&real_seqs, &targets, 2, 5e-3, self.seed ^ (round + 2));
            }
        }
        let predictions = clf.predict(&real_seqs);
        WeSTClassOutput {
            predictions,
            pretrain_predictions,
            keywords,
        }
    }
}

/// Sanity measure used in tests: fraction of interpreted keywords that are
/// topically consistent (cosine to their class centroid above the global
/// mean).
pub fn keyword_coherence(keywords: &[Vec<TokenId>], wv: &WordVectors) -> f32 {
    let mut coherent = 0usize;
    let mut total = 0usize;
    for kw in keywords {
        if Vocab::is_special(*kw.first().unwrap_or(&0)) {
            continue;
        }
        let center = wv.mean_vector(kw);
        for &t in kw {
            total += 1;
            if vector::cosine(wv.get(t), &center) > 0.2 {
                coherent += 1;
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        coherent as f32 / total as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use structmine_embed::{Sgns, SgnsConfig};
    use structmine_eval::accuracy;
    use structmine_text::synth::recipes;

    fn setup() -> (Dataset, WordVectors) {
        let d = recipes::agnews(0.12, 11).unwrap();
        let wv = Sgns::train(
            &d.corpus,
            &SgnsConfig {
                epochs: 4,
                dim: 24,
                ..Default::default()
            },
        );
        (d, wv)
    }

    fn acc(d: &Dataset, preds: &[usize]) -> f32 {
        accuracy(&common::test_slice(d, preds), &d.test_gold())
    }

    #[test]
    fn westclass_with_label_names_beats_ir_baseline() {
        let (d, wv) = setup();
        let sup = d.supervision_names();
        let out = WeSTClass {
            pseudo_per_class: 40,
            ..Default::default()
        }
        .run(&d, &sup, &wv);
        let ours = acc(&d, &out.predictions);
        let ir = acc(&d, &crate::baselines::ir_tfidf(&d, &sup));
        assert!(ours > 0.6, "WeSTClass acc {ours}");
        assert!(
            ours > ir - 0.05,
            "WeSTClass {ours} should not trail IR {ir}"
        );
    }

    #[test]
    fn self_training_does_not_hurt() {
        let (d, wv) = setup();
        let out = WeSTClass {
            pseudo_per_class: 40,
            ..Default::default()
        }
        .run(&d, &d.supervision_keywords(), &wv);
        let pre = acc(&d, &out.pretrain_predictions);
        let post = acc(&d, &out.predictions);
        assert!(
            post >= pre - 0.03,
            "self-training regressed: {pre} -> {post}"
        );
    }

    #[test]
    fn doc_supervision_extracts_topical_keywords() {
        let (d, wv) = setup();
        let sup = d.supervision_docs(5, 3);
        let out = WeSTClass {
            pseudo_per_class: 30,
            ..Default::default()
        }
        .run(&d, &sup, &wv);
        assert_eq!(out.keywords.len(), d.n_classes());
        assert!(out.keywords.iter().all(|k| !k.is_empty()));
        assert!(keyword_coherence(&out.keywords, &wv) > 0.6);
        assert!(acc(&d, &out.predictions) > 0.55);
    }

    #[test]
    fn han_backbone_works_too() {
        let (d, wv) = setup();
        let out = WeSTClass {
            backbone: Backbone::Han,
            pseudo_per_class: 30,
            ..Default::default()
        }
        .run(&d, &d.supervision_names(), &wv);
        assert_eq!(out.predictions.len(), d.corpus.len());
        let a = acc(&d, &out.predictions);
        assert!(a > 0.5, "WeSTClass-HAN acc {a}");
    }

    #[test]
    fn pseudo_docs_lean_topical() {
        let (d, wv) = setup();
        let sports = d.corpus.vocab.id("sports").unwrap();
        let vmf = VonMisesFisher::fit(&[wv.get(sports)]);
        let unigram = d.corpus.vocab.unigram_weights(1.0);
        let mut rng = lrng::seeded(5);
        let method = WeSTClass::default();
        let doc = method.gen_pseudo_doc(&vmf, &wv, &unigram, &mut rng);
        assert_eq!(doc.len(), method.pseudo_len);
        let lex = structmine_text::synth::lexicon::lexicon("sports");
        let topical = doc
            .iter()
            .filter(|&&t| lex.contains(&d.corpus.vocab.word(t)))
            .count();
        assert!(
            topical * 3 >= doc.len(),
            "only {topical}/{} pseudo words topical",
            doc.len()
        );
    }
}
