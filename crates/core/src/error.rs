//! Typed method-precondition failures.
//!
//! Every method entry point that used to panic on a malformed input — a
//! flat dataset fed to a hierarchical method, a DAG fed to a tree-only
//! method, supervision of the wrong kind, a prompt or demo word missing
//! from the vocabulary — now returns one of these instead. The CLI and
//! bench harness map every variant onto exit code 2: these are
//! usage-level mistakes, never worth a retry, matching the store/synth
//! error taxonomies.

use structmine_text::taxonomy::NodeId;

/// A method was handed an input it cannot run on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MethodError {
    /// The method needs a taxonomy but the dataset is flat.
    MissingTaxonomy {
        /// The method that refused the dataset.
        method: &'static str,
    },
    /// The method needs a tree but the dataset's taxonomy is a DAG.
    NotATree {
        /// The method that refused the taxonomy.
        method: &'static str,
    },
    /// A non-root taxonomy node has no class mapped to it, so path
    /// predictions could not name it.
    UnmappedNode {
        /// The method that needed the mapping.
        method: &'static str,
        /// The node with no `class_nodes` entry.
        node: NodeId,
    },
    /// The method needs labeled-document supervision.
    NeedsLabeledDocs {
        /// The method that refused the supervision.
        method: &'static str,
    },
    /// A word the method relies on is absent from its context or the
    /// corpus vocabulary.
    MissingWord {
        /// The method that needed the word.
        method: &'static str,
        /// What was missing, human-readable.
        what: String,
    },
}

impl std::fmt::Display for MethodError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MethodError::MissingTaxonomy { method } => {
                write!(
                    f,
                    "{method} requires a hierarchical dataset (no taxonomy present)"
                )
            }
            MethodError::NotATree { method } => {
                write!(f, "{method} requires a tree taxonomy (this one is a DAG)")
            }
            MethodError::UnmappedNode { method, node } => {
                write!(f, "{method}: taxonomy node {node} maps to no class")
            }
            MethodError::NeedsLabeledDocs { method } => {
                write!(f, "{method} needs labeled-document supervision")
            }
            MethodError::MissingWord { method, what } => {
                write!(f, "{method}: {what}")
            }
        }
    }
}

impl std::error::Error for MethodError {}
