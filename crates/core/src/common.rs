//! Utilities shared across method implementations.

use crate::error::MethodError;
use structmine_embed::WordVectors;
use structmine_linalg::exec::{par_map_chunks, ExecPolicy};
use structmine_linalg::{vector, Matrix};
use structmine_plm::MiniPlm;
use structmine_text::taxonomy::{NodeId, Taxonomy};
use structmine_text::tfidf::TfIdf;
use structmine_text::vocab::TokenId;
use structmine_text::{Dataset, Supervision};

/// A taxonomy validated against the dataset's class list: every non-root
/// node maps to exactly one class, so downstream code can index where it
/// previously had to search-and-panic. Hierarchical methods build one of
/// these up front (returning [`MethodError`] on a malformed dataset) and
/// run the rest of the pipeline infallibly.
pub(crate) struct HierView<'a> {
    /// The dataset's taxonomy.
    pub taxonomy: &'a Taxonomy,
    /// node → class index, dense over node ids; the root keeps a sentinel
    /// (it is never predicted — `ancestors`/`path_from_root` exclude it).
    class_of: Vec<usize>,
}

impl HierView<'_> {
    /// The class index of a validated non-root node.
    pub fn class_of(&self, node: NodeId) -> usize {
        self.class_of[node]
    }
}

/// Validate that `dataset` carries a taxonomy whose every non-root node
/// maps to a class.
pub(crate) fn hier_view<'a>(
    dataset: &'a Dataset,
    method: &'static str,
) -> Result<HierView<'a>, MethodError> {
    let taxonomy = dataset
        .taxonomy
        .as_ref()
        .ok_or(MethodError::MissingTaxonomy { method })?;
    let mut class_of = vec![usize::MAX; taxonomy.len()];
    for (class, &node) in dataset.class_nodes.iter().enumerate() {
        if node < class_of.len() {
            class_of[node] = class;
        }
    }
    for node in taxonomy.non_root_nodes() {
        if class_of[node] == usize::MAX {
            return Err(MethodError::UnmappedNode { method, node });
        }
    }
    Ok(HierView { taxonomy, class_of })
}

/// Resolve the per-class seed token lists for a supervision value, falling
/// back to the dataset's label names when given document-level supervision
/// (methods that need seeds but receive docs use names as seeds).
pub fn seed_tokens(dataset: &Dataset, sup: &Supervision) -> Vec<Vec<TokenId>> {
    match sup.seed_tokens() {
        Some(seeds) => seeds.to_vec(),
        None => dataset.label_name_tokens(),
    }
}

/// IDF-weighted static-embedding features for every document (`n x d`).
pub fn embedding_features(dataset: &Dataset, wv: &WordVectors) -> Matrix {
    let tfidf = TfIdf::fit(&dataset.corpus);
    structmine_embed::docvec::weighted_doc_vectors(&dataset.corpus, wv, &tfidf)
}

/// Average-pooled PLM features for every document (`n x d_model`), under
/// the process-wide default execution policy.
pub fn plm_features(dataset: &Dataset, plm: &MiniPlm) -> Matrix {
    plm_features_with(dataset, plm, ExecPolicy::global())
}

/// Average-pooled PLM features for every document (`n x d_model`), sharing
/// the per-document encodes across the policy's threads.
///
/// Routed through the global artifact store: within a process the matrix is
/// computed once per (model, corpus) pair and shared, and across processes
/// it is read back from disk instead of re-encoding the corpus.
pub fn plm_features_with(dataset: &Dataset, plm: &MiniPlm, policy: &ExecPolicy) -> Matrix {
    let stage = structmine_plm::artifacts::DocMeanReps {
        model: plm,
        corpus: &dataset.corpus,
        exec: *policy,
    };
    (*structmine_store::global().run(&stage)).clone()
}

/// Assign every document to the class whose prototype vector is most
/// cosine-similar to the document's feature row.
pub fn nearest_prototype(features: &Matrix, prototypes: &Matrix) -> Vec<usize> {
    let idx: Vec<usize> = (0..features.rows()).collect();
    par_map_chunks(ExecPolicy::global(), &idx, |_, &i| {
        let row = features.row(i);
        let scores: Vec<f32> = (0..prototypes.rows())
            .map(|c| vector::cosine(row, prototypes.row(c)))
            .collect();
        vector::argmax(&scores).unwrap_or(0)
    })
}

/// Class prototypes as mean seed-token embeddings (`k x d`).
pub fn seed_prototypes(seeds: &[Vec<TokenId>], wv: &WordVectors) -> Matrix {
    let mut out = Matrix::zeros(seeds.len(), wv.dim());
    for (c, tokens) in seeds.iter().enumerate() {
        out.row_mut(c).copy_from_slice(&wv.mean_vector(tokens));
    }
    out
}

/// Restrict a per-document prediction vector to the test split.
pub fn test_slice(dataset: &Dataset, preds: &[usize]) -> Vec<usize> {
    dataset.test_idx.iter().map(|&i| preds[i]).collect()
}

/// Softmax rows of a score matrix in place and return it.
pub fn softmax_rows(mut scores: Matrix) -> Matrix {
    for i in 0..scores.rows() {
        structmine_linalg::stats::softmax_inplace(scores.row_mut(i));
    }
    scores
}

/// Select, per class, the `quota` most confident documents under `probs`
/// (`n x k`); returns (doc indices, their hard labels). Documents are
/// assigned to their argmax class only.
pub fn most_confident_per_class(probs: &Matrix, quota: usize) -> (Vec<usize>, Vec<usize>) {
    let k = probs.cols();
    let mut by_class: Vec<Vec<(usize, f32)>> = vec![Vec::new(); k];
    for i in 0..probs.rows() {
        if let Some(c) = vector::argmax(probs.row(i)) {
            by_class[c].push((i, probs.get(i, c)));
        }
    }
    let mut docs = Vec::new();
    let mut labels = Vec::new();
    for (c, mut members) in by_class.into_iter().enumerate() {
        members.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        for (i, _) in members.into_iter().take(quota) {
            docs.push(i);
            labels.push(c);
        }
    }
    (docs, labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use structmine_text::synth::recipes;

    #[test]
    fn seed_tokens_falls_back_to_names_for_doc_supervision() {
        let d = recipes::agnews(0.05, 1).unwrap();
        let sup = d.supervision_docs(2, 1);
        let seeds = seed_tokens(&d, &sup);
        assert_eq!(seeds, d.label_name_tokens());
        let ksup = d.supervision_keywords();
        assert_eq!(seed_tokens(&d, &ksup), d.keyword_tokens());
    }

    #[test]
    fn nearest_prototype_picks_closest() {
        let features = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let prototypes = Matrix::from_rows(&[&[0.9, 0.1], &[0.1, 0.9]]);
        assert_eq!(nearest_prototype(&features, &prototypes), vec![0, 1]);
    }

    #[test]
    fn most_confident_per_class_respects_quota_and_order() {
        let probs = Matrix::from_rows(&[&[0.9, 0.1], &[0.6, 0.4], &[0.8, 0.2], &[0.2, 0.8]]);
        let (docs, labels) = most_confident_per_class(&probs, 2);
        // Class 0: docs 0 (0.9) and 2 (0.8); class 1: doc 3.
        assert_eq!(docs.len(), 3);
        assert!(docs.contains(&0) && docs.contains(&2) && docs.contains(&3));
        let idx0 = docs.iter().position(|&d| d == 0).unwrap();
        assert_eq!(labels[idx0], 0);
    }

    #[test]
    fn test_slice_projects_predictions() {
        let d = recipes::yelp(0.05, 2).unwrap();
        let preds: Vec<usize> = (0..d.corpus.len()).map(|i| i % 2).collect();
        let sliced = test_slice(&d, &preds);
        assert_eq!(sliced.len(), d.test_idx.len());
        assert_eq!(sliced[0], d.test_idx[0] % 2);
    }
}
