//! X-Class — text classification with extremely weak supervision via
//! class-oriented representations (Wang, Mekala & Shang, NAACL 2021).
//!
//! Average-pooled PLM representations cluster by *dominant* signal, which
//! need not be the user's desired class criterion (the same corpus can be
//! classified by topic, location, or sentiment). X-Class steers the
//! representation toward the classes:
//!
//! 1. **Class representations** — start from the label name's
//!    contextualized occurrences and expand with statically similar words.
//! 2. **Class-oriented document representations** — a document is the
//!    attention-weighted average of its token representations, weighted by
//!    similarity to the closest class representation.
//! 3. **Document-class alignment** — a Gaussian mixture *seeded on the
//!    per-class prior means* clusters the documents while keeping cluster
//!    `c` aligned with class `c`.
//! 4. **Classifier training** — the most confident fraction per class
//!    trains a conventional classifier that predicts every document.
//!
//! `rep_predictions` / `align_predictions` / `predictions` reproduce the
//! paper's X-Class-Rep / X-Class-Align / X-Class rows.

use crate::common;
use structmine_cluster::gmm::{Gmm, GmmConfig};
use structmine_linalg::exec::ExecPolicy;
use structmine_linalg::{stats, vector, Matrix, Pca};
use structmine_nn::classifiers::{MlpClassifier, TrainConfig};
use structmine_plm::MiniPlm;
use structmine_text::vocab::TokenId;
use structmine_text::Dataset;

/// X-Class hyper-parameters.
#[derive(Clone, Copy, Debug)]
pub struct XClass {
    /// EM iterations for the alignment GMM. Deliberately small: the prior
    /// (class-seeded) means are the supervision signal, and long EM runs
    /// drift toward whatever unsupervised structure dominates the corpus.
    pub gmm_iters: usize,
    /// Similar words added to each class representation.
    pub expand_words: usize,
    /// Contextualized occurrences of the label name averaged per class.
    pub occurrences_cap: usize,
    /// Attention sharpness over token-to-class similarity.
    pub attention_temp: f32,
    /// PCA dimensionality before GMM alignment (0 = no PCA).
    pub pca_dims: usize,
    /// Fraction of documents (per class) kept as confident training data.
    pub confident_fraction: f32,
    /// Classifier hidden width.
    pub hidden: usize,
    /// RNG seed.
    pub seed: u64,
    /// Execution policy for the corpus encode (thread count; output is
    /// bitwise identical for any value).
    pub exec: ExecPolicy,
}

impl Default for XClass {
    fn default() -> Self {
        XClass {
            gmm_iters: 1,
            expand_words: 8,
            occurrences_cap: 40,
            attention_temp: 8.0,
            pca_dims: 16,
            confident_fraction: 0.5,
            hidden: 32,
            seed: 81,
            exec: ExecPolicy::default(),
        }
    }
}

impl structmine_store::StableHash for XClass {
    /// Every hyper-parameter plus the policy's precision tier. The thread
    /// count is excluded (it cannot change outputs), but the precision
    /// tier swaps in approximate PLM inference kernels and *does* change
    /// bits — Exact and Fast runs must never share a cache entry.
    fn stable_hash(&self, h: &mut structmine_store::StableHasher) {
        self.gmm_iters.stable_hash(h);
        self.expand_words.stable_hash(h);
        self.occurrences_cap.stable_hash(h);
        self.attention_temp.stable_hash(h);
        self.pca_dims.stable_hash(h);
        self.confident_fraction.stable_hash(h);
        self.hidden.stable_hash(h);
        self.seed.stable_hash(h);
        self.exec.precision().stable_hash(h);
    }
}

/// X-Class outputs, exposing the paper's ablation stages.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct XClassOutput {
    /// Final predictions (confident-subset classifier) — "X-Class".
    pub predictions: Vec<usize>,
    /// Nearest-class-representation predictions — "X-Class-Rep".
    pub rep_predictions: Vec<usize>,
    /// GMM-aligned predictions — "X-Class-Align".
    pub align_predictions: Vec<usize>,
    /// The words backing each class representation.
    pub class_words: Vec<Vec<TokenId>>,
}

/// Stage: X-Class's expanded class representations (step 1).
struct ClassRepsStage<'a> {
    cfg: &'a XClass,
    dataset: &'a Dataset,
    plm: &'a MiniPlm,
}

impl structmine_store::Stage for ClassRepsStage<'_> {
    type Output = (Matrix, Vec<Vec<TokenId>>);

    fn name(&self) -> &'static str {
        "xclass/class-reps"
    }

    fn fingerprint(&self, h: &mut structmine_store::StableHasher) {
        use structmine_store::StableHash;
        h.write_u128(self.dataset.fingerprint());
        h.write_u128(self.plm.fingerprint());
        self.cfg.expand_words.stable_hash(h);
        self.cfg.occurrences_cap.stable_hash(h);
        // The occurrence encodes below run at the policy's precision tier,
        // so Exact and Fast runs must key separately. Downstream stages
        // (doc-reps, align) chain on this key and inherit the split.
        self.cfg.exec.precision().stable_hash(h);
    }

    fn compute(&self) -> (Matrix, Vec<Vec<TokenId>>) {
        self.cfg.class_representations(self.dataset, self.plm)
    }
}

/// Stage: class-oriented document representations (step 2), chained onto
/// the class-reps stage by its artifact key. The underlying corpus encode
/// runs through the shared [`structmine_plm::artifacts::EncodeCorpus`]
/// stage, so other methods in the same process reuse it.
struct DocRepsStage<'a> {
    cfg: &'a XClass,
    dataset: &'a Dataset,
    plm: &'a MiniPlm,
    class_reps: &'a Matrix,
    upstream: &'a structmine_store::ArtifactKey,
}

impl structmine_store::Stage for DocRepsStage<'_> {
    type Output = Matrix;

    fn name(&self) -> &'static str {
        "xclass/doc-reps"
    }

    fn fingerprint(&self, h: &mut structmine_store::StableHasher) {
        use structmine_store::StableHash;
        self.upstream.stable_hash(h);
        self.cfg.attention_temp.stable_hash(h);
    }

    fn compute(&self) -> Matrix {
        let encoded = structmine_store::global().run(&structmine_plm::artifacts::EncodeCorpus {
            model: self.plm,
            corpus: &self.dataset.corpus,
            exec: self.cfg.exec,
        });
        self.cfg
            .doc_representations(self.dataset, self.plm, self.class_reps, &encoded)
    }
}

/// Stage: GMM document-class alignment (step 3) — posteriors plus hard
/// assignments.
struct AlignStage<'a> {
    cfg: &'a XClass,
    doc_reps: &'a Matrix,
    rep_predictions: &'a [usize],
    n_classes: usize,
    upstream: &'a structmine_store::ArtifactKey,
}

impl structmine_store::Stage for AlignStage<'_> {
    type Output = (Matrix, Vec<usize>);

    fn name(&self) -> &'static str {
        "xclass/align"
    }

    fn fingerprint(&self, h: &mut structmine_store::StableHasher) {
        use structmine_store::StableHash;
        self.upstream.stable_hash(h);
        self.cfg.gmm_iters.stable_hash(h);
        self.cfg.pca_dims.stable_hash(h);
    }

    fn compute(&self) -> (Matrix, Vec<usize>) {
        self.cfg
            .align(self.doc_reps, self.rep_predictions, self.n_classes)
    }
}

impl XClass {
    /// Run X-Class with label-name supervision, memoized through the
    /// global artifact store. A cold run persists each internal stage —
    /// class representations, document representations, alignment, final
    /// predictions — so a hyper-parameter change recomputes only from the
    /// first stale stage.
    pub fn run(&self, dataset: &Dataset, plm: &MiniPlm) -> XClassOutput {
        use structmine_store::StableHash;
        crate::pipeline::run_memoized(
            "xclass/predict",
            |h| {
                h.write_u128(dataset.fingerprint());
                h.write_u128(plm.fingerprint());
                self.stable_hash(h);
            },
            || self.run_staged(dataset, plm),
        )
    }

    /// The staged pipeline behind [`XClass::run`]: each step goes through
    /// the store individually, so a warm store serves every step that is
    /// still valid.
    fn run_staged(&self, dataset: &Dataset, plm: &MiniPlm) -> XClassOutput {
        use structmine_store::Stage;
        let store = structmine_store::global();
        let class_stage = ClassRepsStage {
            cfg: self,
            dataset,
            plm,
        };
        let class_key = class_stage.key();
        let class_out = store.run(&class_stage);
        let (class_reps, class_words) = &*class_out;
        let n_classes = class_words.len();

        let doc_stage = DocRepsStage {
            cfg: self,
            dataset,
            plm,
            class_reps,
            upstream: &class_key,
        };
        let doc_key = doc_stage.key();
        let doc_reps = store.run(&doc_stage);
        let rep_predictions = common::nearest_prototype(&doc_reps, class_reps);

        let align_out = store.run(&AlignStage {
            cfg: self,
            doc_reps: &doc_reps,
            rep_predictions: &rep_predictions,
            n_classes,
            upstream: &doc_key,
        });
        let (posteriors, align_predictions) = &*align_out;

        let predictions = structmine_store::context::with_stage_label("xclass/classify", || {
            self.classify(&doc_reps, posteriors, n_classes)
        });
        XClassOutput {
            predictions,
            rep_predictions,
            align_predictions: align_predictions.clone(),
            class_words: class_words.clone(),
        }
    }

    /// Run X-Class without consulting the artifact store at any stage.
    pub fn run_uncached(&self, dataset: &Dataset, plm: &MiniPlm) -> XClassOutput {
        use structmine_store::context::with_stage_label;
        let _stage = structmine_store::context::stage_guard("xclass/run");
        let (class_reps, class_words) = with_stage_label("xclass/class-reps", || {
            self.class_representations(dataset, plm)
        });
        let n_classes = class_words.len();
        let doc_reps = with_stage_label("xclass/doc-reps", || {
            let encoded = plm.encode_corpus(&dataset.corpus, &self.exec);
            self.doc_representations(dataset, plm, &class_reps, &encoded)
        });
        let rep_predictions = common::nearest_prototype(&doc_reps, &class_reps);
        let (posteriors, align_predictions) = with_stage_label("xclass/align", || {
            self.align(&doc_reps, &rep_predictions, n_classes)
        });
        let predictions = with_stage_label("xclass/classify", || {
            self.classify(&doc_reps, &posteriors, n_classes)
        });
        XClassOutput {
            predictions,
            rep_predictions,
            align_predictions,
            class_words,
        }
    }

    /// Step 1: class representations expanded with similar words.
    fn class_representations(
        &self,
        dataset: &Dataset,
        plm: &MiniPlm,
    ) -> (Matrix, Vec<Vec<TokenId>>) {
        let names = dataset.label_name_tokens();
        let n_classes = names.len();
        let d = plm.config.d_model;
        let mut class_reps = Matrix::zeros(n_classes, d);
        let mut class_words = Vec::with_capacity(n_classes);
        for (c, name) in names.iter().enumerate() {
            let mut acc = vec![0.0f32; d];
            let mut count = 0usize;
            for &t in name {
                for o in structmine_plm::repr::occurrence_reps_with(
                    plm,
                    &dataset.corpus,
                    t,
                    self.occurrences_cap,
                    &self.exec,
                ) {
                    vector::axpy(&mut acc, 1.0, &o.vector);
                    count += 1;
                }
            }
            if count > 0 {
                vector::scale(&mut acc, 1.0 / count as f32);
            }
            // Expand with statically similar words (harmonic weighting).
            let mut words = name.clone();
            let name_static = static_mean(plm, name);
            let mut sims: Vec<(TokenId, f32)> = (structmine_text::vocab::N_SPECIAL as u32
                ..dataset.corpus.vocab.len() as u32)
                .filter(|t| !name.contains(t) && dataset.corpus.vocab.count(*t) > 0)
                .map(|t| (t, vector::cosine(plm.token_embedding(t), &name_static)))
                .collect();
            sims.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
            for (rank, &(t, _)) in sims.iter().take(self.expand_words).enumerate() {
                let weight = 1.0 / (rank + 2) as f32;
                vector::axpy(&mut acc, weight, plm.token_embedding(t));
                words.push(t);
            }
            vector::normalize(&mut acc);
            class_reps.row_mut(c).copy_from_slice(&acc);
            class_words.push(words);
        }
        (class_reps, class_words)
    }

    /// Step 2: class-oriented document representations — per-document
    /// attention over the (shared) corpus encode's token matrices.
    fn doc_representations(
        &self,
        dataset: &Dataset,
        plm: &MiniPlm,
        class_reps: &Matrix,
        encoded: &[structmine_plm::repr::DocRep],
    ) -> Matrix {
        let n = dataset.corpus.len();
        let d = plm.config.d_model;
        let mut doc_reps = Matrix::zeros(n, d);
        for rep_out in encoded {
            if rep_out.tokens.rows() == 0 {
                continue;
            }
            let rep = attention_doc_rep(&rep_out.tokens, class_reps, self.attention_temp);
            doc_reps.row_mut(rep_out.doc).copy_from_slice(&rep);
        }
        doc_reps
    }

    /// Step 3: GMM alignment (with PCA), seeded on prior class means.
    fn align(
        &self,
        doc_reps: &Matrix,
        rep_predictions: &[usize],
        n_classes: usize,
    ) -> (Matrix, Vec<usize>) {
        let n = doc_reps.rows();
        let d = doc_reps.cols();
        let aligned_space = if self.pca_dims > 0 && self.pca_dims < d {
            let pca = Pca::fit(doc_reps, self.pca_dims);
            pca.transform(doc_reps)
        } else {
            doc_reps.clone()
        };
        let mut prior_means = Matrix::zeros(n_classes, aligned_space.cols());
        let mut counts = vec![0usize; n_classes];
        for (i, &p) in rep_predictions.iter().enumerate() {
            for (m, &v) in prior_means.row_mut(p).iter_mut().zip(aligned_space.row(i)) {
                *m += v;
            }
            counts[p] += 1;
        }
        for (c, &count) in counts.iter().enumerate() {
            if count > 0 {
                let inv = 1.0 / count as f32;
                for m in prior_means.row_mut(c) {
                    *m *= inv;
                }
            }
        }
        // GMM EM needs at least one document per mixture component; on
        // smaller inputs (e.g. a one-line `classify`) fall back to the
        // prototype assignment instead of panicking.
        if n >= n_classes {
            let gmm = Gmm::fit(
                &aligned_space,
                &prior_means,
                &GmmConfig {
                    max_iters: self.gmm_iters,
                    ..Default::default()
                },
            );
            let posteriors = gmm.responsibilities(&aligned_space);
            let align_predictions: Vec<usize> = (0..n)
                .map(|i| vector::argmax(posteriors.row(i)).unwrap_or(0))
                .collect();
            (posteriors, align_predictions)
        } else {
            let mut posteriors = Matrix::zeros(n, n_classes);
            for (i, &p) in rep_predictions.iter().enumerate() {
                posteriors.set(i, p, 1.0);
            }
            (posteriors, rep_predictions.to_vec())
        }
    }

    /// Step 4: confident-subset classifier over the class-oriented
    /// representations.
    fn classify(&self, doc_reps: &Matrix, posteriors: &Matrix, n_classes: usize) -> Vec<usize> {
        self.train_classifier(doc_reps, posteriors, n_classes)
            .predict(doc_reps)
    }

    /// Train the step-4 classifier and return it (instead of discarding it
    /// after predicting) — the serving layer freezes this classifier inside
    /// an [`XClassModel`]. Deterministic: the returned classifier's
    /// predictions on `doc_reps` equal [`XClassOutput::predictions`].
    fn train_classifier(
        &self,
        doc_reps: &Matrix,
        posteriors: &Matrix,
        n_classes: usize,
    ) -> MlpClassifier {
        let n = doc_reps.rows();
        let quota = ((n as f32 * self.confident_fraction) / n_classes as f32).ceil() as usize;
        let (train_docs, train_labels) = common::most_confident_per_class(posteriors, quota.max(1));
        // Train the final classifier on the class-oriented representations
        // (the paper fine-tunes the encoder; our frozen generic pool would
        // discard exactly the orientation the earlier stages constructed).
        let features = doc_reps;
        let mut clf = MlpClassifier::new(features.cols(), self.hidden, n_classes, self.seed);
        if !train_docs.is_empty() {
            let x = features.select_rows(&train_docs);
            let t = structmine_nn::classifiers::one_hot(&train_labels, n_classes, 0.1);
            clf.fit(
                &x,
                &t,
                &TrainConfig {
                    epochs: 30,
                    seed: self.seed,
                    ..Default::default()
                },
            );
        }
        clf
    }

    /// Fit a frozen per-document serving model: the staged pipeline runs
    /// (or replays from the warm store) exactly as in [`XClass::run`], and
    /// the step-4 classifier is retained together with the class
    /// representations instead of being discarded. The returned model
    /// applies a *per-document* rule, so its predictions are independent of
    /// how documents are batched.
    pub fn fit_model(&self, dataset: &Dataset, plm: &MiniPlm) -> XClassModel {
        use structmine_store::Stage;
        let _stage = structmine_store::context::stage_guard("xclass/fit-model");
        let store = structmine_store::global();
        let class_stage = ClassRepsStage {
            cfg: self,
            dataset,
            plm,
        };
        let class_key = class_stage.key();
        let class_out = store.run(&class_stage);
        let (class_reps, class_words) = &*class_out;
        let n_classes = class_words.len();

        let doc_stage = DocRepsStage {
            cfg: self,
            dataset,
            plm,
            class_reps,
            upstream: &class_key,
        };
        let doc_key = doc_stage.key();
        let doc_reps = store.run(&doc_stage);
        let rep_predictions = common::nearest_prototype(&doc_reps, class_reps);
        let align_out = store.run(&AlignStage {
            cfg: self,
            doc_reps: &doc_reps,
            rep_predictions: &rep_predictions,
            n_classes,
            upstream: &doc_key,
        });
        let (posteriors, _) = &*align_out;
        let clf = self.train_classifier(&doc_reps, posteriors, n_classes);
        XClassModel {
            class_reps: class_reps.clone(),
            class_words: class_words.clone(),
            attention_temp: self.attention_temp,
            clf,
        }
    }
}

/// Attention weights of one encoded document's tokens (`len` values summing
/// to 1): each token's weight is its best class-representation cosine,
/// sharpened by `attention_temp` and softmax-normalized. Purely per-document
/// — independent of every other document in the batch.
pub fn attention_weights(tokens: &Matrix, class_reps: &Matrix, attention_temp: f32) -> Vec<f32> {
    let n_classes = class_reps.rows();
    let mut weights: Vec<f32> = (0..tokens.rows())
        .map(|r| {
            (0..n_classes)
                .map(|c| vector::cosine(tokens.row(r), class_reps.row(c)))
                .fold(f32::NEG_INFINITY, f32::max)
                * attention_temp
        })
        .collect();
    stats::softmax_inplace(&mut weights);
    weights
}

/// Class-oriented representation of one encoded document: the
/// attention-weighted average of its token representations (step 2's
/// per-document rule). Returns zeros for an empty document.
pub fn attention_doc_rep(tokens: &Matrix, class_reps: &Matrix, attention_temp: f32) -> Vec<f32> {
    let d = class_reps.cols();
    if tokens.rows() == 0 {
        return vec![0.0; d];
    }
    let weights = attention_weights(tokens, class_reps, attention_temp);
    let mut rep = vec![0.0f32; d];
    for (r, &w) in weights.iter().enumerate() {
        vector::axpy(&mut rep, w, tokens.row(r));
    }
    rep
}

/// A frozen X-Class serving model: the expanded class representations plus
/// the trained step-4 classifier. [`XClassModel::predict_proba`] applies
/// X-Class's per-document rule — attention representation, then classifier
/// forward pass — so a document's output never depends on its batch.
pub struct XClassModel {
    /// Expanded class representations (`k x d_model`).
    pub class_reps: Matrix,
    /// The words backing each class representation.
    pub class_words: Vec<Vec<TokenId>>,
    /// Attention sharpness the model was fitted with.
    pub attention_temp: f32,
    clf: MlpClassifier,
}

impl XClassModel {
    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.class_reps.rows()
    }

    /// The class-oriented representation of one encoded document.
    pub fn doc_rep(&self, tokens: &Matrix) -> Vec<f32> {
        attention_doc_rep(tokens, &self.class_reps, self.attention_temp)
    }

    /// Per-class probabilities for one encoded document.
    pub fn predict_proba(&self, tokens: &Matrix) -> Vec<f32> {
        let rep = self.doc_rep(tokens);
        let rep_ref: &[f32] = &rep;
        let x = Matrix::from_rows(&[rep_ref]);
        self.clf.predict_proba(&x).row(0).to_vec()
    }

    /// Attention weight of every token in one encoded document.
    pub fn attention(&self, tokens: &Matrix) -> Vec<f32> {
        attention_weights(tokens, &self.class_reps, self.attention_temp)
    }
}

fn static_mean(plm: &MiniPlm, tokens: &[TokenId]) -> Vec<f32> {
    let refs: Vec<&[f32]> = tokens.iter().map(|&t| plm.token_embedding(t)).collect();
    vector::mean_of(&refs, plm.config.d_model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use structmine_eval::accuracy;
    use structmine_plm::cache::{pretrained, Tier};
    use structmine_text::synth::recipes;

    fn acc(d: &Dataset, preds: &[usize]) -> f32 {
        accuracy(&common::test_slice(d, preds), &d.test_gold())
    }

    #[test]
    fn xclass_stages_all_beat_chance_and_final_is_competitive() {
        let d = recipes::agnews(0.1, 41).unwrap();
        let plm = pretrained(Tier::Test, 0);
        let out = XClass::default().run(&d, &plm);
        let rep = acc(&d, &out.rep_predictions);
        let align = acc(&d, &out.align_predictions);
        let fin = acc(&d, &out.predictions);
        assert!(rep > 0.4, "Rep acc {rep}");
        assert!(align > 0.4, "Align acc {align}");
        assert!(fin > 0.5, "X-Class acc {fin}");
        assert!(
            fin + 0.1 >= rep,
            "final should not collapse: rep {rep} final {fin}"
        );
    }

    #[test]
    fn class_words_include_the_name_and_expansions() {
        let d = recipes::yelp(0.08, 42).unwrap();
        let plm = pretrained(Tier::Test, 0);
        let out = XClass::default().run(&d, &plm);
        let names = d.label_name_tokens();
        for (c, words) in out.class_words.iter().enumerate() {
            assert!(words.len() > names[c].len(), "class {c} not expanded");
            assert!(names[c].iter().all(|t| words.contains(t)));
        }
    }

    #[test]
    fn fitted_model_reproduces_run_predictions_per_document() {
        let d = recipes::agnews(0.06, 44).unwrap();
        let plm = pretrained(Tier::Test, 0);
        let cfg = XClass::default();
        let out = cfg.run(&d, &plm);
        let model = cfg.fit_model(&d, &plm);
        assert_eq!(model.n_classes(), d.n_classes());
        let encoded = plm.encode_corpus(&d.corpus, &ExecPolicy::serial());
        for rep in &encoded {
            let probs = model.predict_proba(&rep.tokens);
            let pred = vector::argmax(&probs).unwrap_or(0);
            assert_eq!(
                pred, out.predictions[rep.doc],
                "doc {} diverges from the batch pipeline",
                rep.doc
            );
        }
    }

    #[test]
    fn handles_imbalanced_datasets() {
        let d = recipes::nyt_small(0.1, 43).unwrap();
        let plm = pretrained(Tier::Test, 0);
        let out = XClass::default().run(&d, &plm);
        let fin = acc(&d, &out.predictions);
        assert!(fin > 0.4, "imbalanced acc {fin}");
        // All classes must be predicted at least once somewhere (the GMM
        // seeding is supposed to prevent majority collapse).
        let distinct: std::collections::HashSet<_> = out.predictions.iter().collect();
        assert!(
            distinct.len() >= d.n_classes() - 1,
            "collapsed to {distinct:?}"
        );
    }
}
