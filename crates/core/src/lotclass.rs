//! LOTClass — text classification using label names only, via language
//! model self-training (Meng et al., EMNLP 2020).
//!
//! 1. **Category vocabulary**: for every occurrence of a label name in the
//!    corpus, ask the MLM for its top replacement words; the most frequent
//!    replacements across occurrences form the category vocabulary,
//!    overcoming the low semantic coverage of a single name.
//! 2. **Masked category prediction (MCP)**: a word occurrence is *topic
//!    indicative* for class `c` when the MLM's top replacements at that
//!    position overlap class `c`'s vocabulary strongly (context-free string
//!    matching would mislabel "sports" in "this phone sports a hard disk").
//!    Documents gain pseudo labels from their indicative occurrences.
//! 3. **Self-training**: a classifier trained on MCP pseudo labels is
//!    refined on the whole corpus with the soft target distribution.

use crate::common;
use structmine_linalg::exec::{par_map_chunks, ExecPolicy};
use structmine_linalg::{vector, Matrix};
use structmine_nn::classifiers::{MlpClassifier, TrainConfig};
use structmine_nn::selftrain::{self, SelfTrainConfig};
use structmine_plm::MiniPlm;
use structmine_text::vocab::{TokenId, Vocab};
use structmine_text::Dataset;

/// LOTClass hyper-parameters.
#[derive(Clone, Copy, Debug)]
pub struct LotClass {
    /// MLM replacements considered per occurrence.
    pub replacements_per_occurrence: usize,
    /// Label-name occurrences used to build each category vocabulary.
    pub occurrences_cap: usize,
    /// Size of each category vocabulary.
    pub category_vocab_size: usize,
    /// Replacement overlap (out of `replacements_per_occurrence`) required
    /// to call an occurrence topic-indicative.
    pub overlap_threshold: usize,
    /// Candidate positions inspected per document during MCP.
    pub positions_per_doc: usize,
    /// Run the self-training stage (`false` = the "w/o self train" row).
    pub self_train: bool,
    /// Classifier hidden width.
    pub hidden: usize,
    /// RNG seed.
    pub seed: u64,
    /// Execution policy for the MLM queries and corpus encode (thread
    /// count; output is bitwise identical for any value).
    pub exec: ExecPolicy,
}

impl Default for LotClass {
    fn default() -> Self {
        LotClass {
            replacements_per_occurrence: 30,
            occurrences_cap: 40,
            category_vocab_size: 30,
            overlap_threshold: 4,
            positions_per_doc: 5,
            self_train: true,
            hidden: 32,
            seed: 71,
            exec: ExecPolicy::default(),
        }
    }
}

impl structmine_store::StableHash for LotClass {
    /// Every hyper-parameter plus the policy's precision tier. The thread
    /// count is excluded (it cannot change outputs), but the precision
    /// tier swaps in approximate PLM inference kernels and *does* change
    /// bits — Exact and Fast runs must never share a cache entry.
    fn stable_hash(&self, h: &mut structmine_store::StableHasher) {
        self.replacements_per_occurrence.stable_hash(h);
        self.occurrences_cap.stable_hash(h);
        self.category_vocab_size.stable_hash(h);
        self.overlap_threshold.stable_hash(h);
        self.positions_per_doc.stable_hash(h);
        self.self_train.stable_hash(h);
        self.hidden.stable_hash(h);
        self.seed.stable_hash(h);
        self.exec.precision().stable_hash(h);
    }
}

/// LOTClass outputs.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct LotClassOutput {
    /// Final per-document predictions.
    pub predictions: Vec<usize>,
    /// Predictions before self-training ("Ours w/o. self train").
    pub pretrain_predictions: Vec<usize>,
    /// The discovered category vocabularies.
    pub category_vocab: Vec<Vec<TokenId>>,
    /// Number of documents that received an MCP pseudo label.
    pub n_pseudo_labeled: usize,
}

/// Stage: LOTClass's category vocabularies (step 1). Keyed only on the
/// inputs that influence the vocabularies, so later hyper-parameter changes
/// (MCP thresholds, classifier settings) reuse the cached vocabularies.
/// Deliberately precision-free: the MLM replacement queries always run
/// Exact (there is no fast MLM path), so both tiers share this artifact
/// — as they do the MCP stage chained onto it.
struct CategoryVocabStage<'a> {
    cfg: &'a LotClass,
    dataset: &'a Dataset,
    plm: &'a MiniPlm,
}

impl structmine_store::Stage for CategoryVocabStage<'_> {
    type Output = Vec<Vec<TokenId>>;

    fn name(&self) -> &'static str {
        "lotclass/category-vocab"
    }

    fn fingerprint(&self, h: &mut structmine_store::StableHasher) {
        use structmine_store::StableHash;
        h.write_u128(self.dataset.fingerprint());
        h.write_u128(self.plm.fingerprint());
        self.cfg.replacements_per_occurrence.stable_hash(h);
        self.cfg.occurrences_cap.stable_hash(h);
        self.cfg.category_vocab_size.stable_hash(h);
        self.cfg.seed.stable_hash(h);
    }

    fn compute(&self) -> Vec<Vec<TokenId>> {
        self.cfg.category_vocab(self.dataset, self.plm)
    }
}

/// Stage: masked category prediction (step 2) — `(docs, labels)` pseudo
/// pairs. Chained onto the category-vocab stage by its artifact key.
struct McpStage<'a> {
    cfg: &'a LotClass,
    dataset: &'a Dataset,
    plm: &'a MiniPlm,
    category_vocab: &'a [Vec<TokenId>],
    upstream: &'a structmine_store::ArtifactKey,
}

impl structmine_store::Stage for McpStage<'_> {
    type Output = (Vec<usize>, Vec<usize>);

    fn name(&self) -> &'static str {
        "lotclass/mcp"
    }

    fn fingerprint(&self, h: &mut structmine_store::StableHasher) {
        use structmine_store::StableHash;
        // The upstream key already covers the dataset, the model, and the
        // vocabulary-shaping hyper-parameters.
        self.upstream.stable_hash(h);
        self.cfg.overlap_threshold.stable_hash(h);
        self.cfg.positions_per_doc.stable_hash(h);
    }

    fn compute(&self) -> (Vec<usize>, Vec<usize>) {
        self.cfg
            .mcp_pseudo_labels(self.dataset, self.plm, self.category_vocab)
    }
}

impl LotClass {
    /// Run LOTClass with label-name supervision, memoized through the
    /// global artifact store. A cold run persists each internal stage —
    /// category vocabulary, MCP pseudo labels, final predictions — so a
    /// hyper-parameter change recomputes only from the first stale stage.
    pub fn run(&self, dataset: &Dataset, plm: &MiniPlm) -> LotClassOutput {
        use structmine_store::StableHash;
        crate::pipeline::run_memoized(
            "lotclass/predict",
            |h| {
                h.write_u128(dataset.fingerprint());
                h.write_u128(plm.fingerprint());
                self.stable_hash(h);
            },
            || self.run_staged(dataset, plm),
        )
    }

    /// The staged pipeline behind [`LotClass::run`]: each step goes through
    /// the store individually, so a warm store serves every step that is
    /// still valid.
    fn run_staged(&self, dataset: &Dataset, plm: &MiniPlm) -> LotClassOutput {
        use structmine_store::Stage;
        let store = structmine_store::global();
        let vocab_stage = CategoryVocabStage {
            cfg: self,
            dataset,
            plm,
        };
        let vocab_key = vocab_stage.key();
        let category_vocab = store.run(&vocab_stage);
        let mcp = store.run(&McpStage {
            cfg: self,
            dataset,
            plm,
            category_vocab: &category_vocab,
            upstream: &vocab_key,
        });
        self.classify(dataset, plm, (*category_vocab).clone(), (*mcp).clone())
    }

    /// Run LOTClass without consulting the artifact store at any stage.
    pub fn run_uncached(&self, dataset: &Dataset, plm: &MiniPlm) -> LotClassOutput {
        use structmine_store::context::with_stage_label;
        let _stage = structmine_store::context::stage_guard("lotclass/run");
        let category_vocab = with_stage_label("lotclass/category-vocab", || {
            self.category_vocab(dataset, plm)
        });
        let pseudo = with_stage_label("lotclass/mcp", || {
            self.mcp_pseudo_labels(dataset, plm, &category_vocab)
        });
        with_stage_label("lotclass/classify", || {
            self.classify(dataset, plm, category_vocab, pseudo)
        })
    }

    /// Step 1: category vocabulary via MLM replacement statistics.
    fn category_vocab(&self, dataset: &Dataset, plm: &MiniPlm) -> Vec<Vec<TokenId>> {
        let names = dataset.label_name_tokens();
        // Raw (oversized) vocabularies first. As in the paper's cross-
        // category cleanup, a word claimed by several categories cannot
        // stay in all of them: it is kept only where its replacement count
        // is highest (stopword-like words that are predicted everywhere end
        // up wherever they peak, far down the count ranking, and fall off).
        let background = self.background_replacement_counts(dataset, plm);
        let raw: Vec<Vec<(TokenId, u32)>> = names
            .iter()
            .map(|name| self.build_category_vocab(dataset, plm, name, &background))
            .collect();
        let mut best_home: std::collections::HashMap<TokenId, (usize, u32)> =
            std::collections::HashMap::new();
        for (c, vocab) in raw.iter().enumerate() {
            for &(t, count) in vocab {
                match best_home.entry(t) {
                    std::collections::hash_map::Entry::Occupied(mut e) => {
                        if count > e.get().1 {
                            e.insert((c, count));
                        }
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert((c, count));
                    }
                }
            }
        }
        raw.iter()
            .enumerate()
            .map(|(c, vocab)| {
                vocab
                    .iter()
                    .filter(|&&(t, _)| best_home[&t].0 == c || names[c].contains(&t))
                    .map(|&(t, _)| t)
                    .take(self.category_vocab_size)
                    .collect()
            })
            .collect()
    }

    /// Step 2: masked category prediction — which documents earn a pseudo
    /// label, and which class. Returns parallel `(docs, labels)` lists.
    fn mcp_pseudo_labels(
        &self,
        dataset: &Dataset,
        plm: &MiniPlm,
        category_vocab: &[Vec<TokenId>],
    ) -> (Vec<usize>, Vec<usize>) {
        let n_classes = category_vocab.len();
        let vocab_sets: Vec<std::collections::HashSet<TokenId>> = category_vocab
            .iter()
            .map(|v| v.iter().copied().collect())
            .collect();
        let candidate_tokens: std::collections::HashSet<TokenId> =
            vocab_sets.iter().flatten().copied().collect();
        let budget = plm.config.max_len - 2;
        // Documents are independent under MCP: share them across threads
        // and keep the results in document order.
        let mcp: Vec<Option<usize>> = par_map_chunks(&self.exec, &dataset.corpus.docs, |_, doc| {
            let positions: Vec<usize> = doc
                .tokens
                .iter()
                .take(budget)
                .enumerate()
                .filter(|(_, t)| candidate_tokens.contains(t))
                .map(|(p, _)| p)
                .take(self.positions_per_doc)
                .collect();
            if positions.is_empty() {
                return None;
            }
            // Query the MLM with the candidate positions masked — the head
            // is trained to predict at masked slots.
            let mut seq = plm.wrap(&doc.tokens);
            // +1: CLS occupies row 0 of the wrapped sequence.
            let wrapped_positions: Vec<usize> = positions.iter().map(|&p| p + 1).collect();
            for &wp in &wrapped_positions {
                seq[wp] = structmine_text::vocab::MASK;
            }
            let tops =
                plm.mlm_topk_multi(&seq, &wrapped_positions, self.replacements_per_occurrence);
            let mut votes = vec![0usize; n_classes];
            for top in &tops {
                for (c, set) in vocab_sets.iter().enumerate() {
                    let overlap = top.iter().filter(|(t, _)| set.contains(t)).count();
                    if overlap >= self.overlap_threshold {
                        votes[c] += 1;
                    }
                }
            }
            let best =
                vector::argmax(&votes.iter().map(|&v| v as f32).collect::<Vec<_>>()).unwrap_or(0);
            (votes[best] > 0).then_some(best)
        });
        let mut pseudo_docs = Vec::new();
        let mut pseudo_labels = Vec::new();
        for (i, best) in mcp.into_iter().enumerate() {
            if let Some(best) = best {
                pseudo_docs.push(i);
                pseudo_labels.push(best);
            }
        }
        (pseudo_docs, pseudo_labels)
    }

    /// Step 3: classifier + self-training over the MCP pseudo labels.
    fn classify(
        &self,
        dataset: &Dataset,
        plm: &MiniPlm,
        category_vocab: Vec<Vec<TokenId>>,
        pseudo: (Vec<usize>, Vec<usize>),
    ) -> LotClassOutput {
        self.classify_full(dataset, plm, category_vocab, pseudo).0
    }

    /// Step 3, additionally returning the trained classifier (after
    /// self-training) — the serving layer freezes it inside a
    /// [`LotClassModel`]. Deterministic: the classifier's predictions on the
    /// corpus features equal [`LotClassOutput::predictions`].
    fn classify_full(
        &self,
        dataset: &Dataset,
        plm: &MiniPlm,
        category_vocab: Vec<Vec<TokenId>>,
        (pseudo_docs, pseudo_labels): (Vec<usize>, Vec<usize>),
    ) -> (LotClassOutput, MlpClassifier) {
        let n_classes = category_vocab.len();
        let features = common::plm_features_with(dataset, plm, &self.exec);
        let mut clf = MlpClassifier::new(features.cols(), self.hidden, n_classes, self.seed);
        if !pseudo_docs.is_empty() {
            let x = features.select_rows(&pseudo_docs);
            let t = structmine_nn::classifiers::one_hot(&pseudo_labels, n_classes, 0.1);
            clf.fit(
                &x,
                &t,
                &TrainConfig {
                    epochs: 30,
                    seed: self.seed,
                    ..Default::default()
                },
            );
        }
        let pretrain_predictions = clf.predict(&features);
        if self.self_train {
            selftrain::self_train(
                &mut clf,
                &features,
                &SelfTrainConfig {
                    seed: self.seed ^ 5,
                    ..Default::default()
                },
            );
        }
        let predictions = clf.predict(&features);

        (
            LotClassOutput {
                predictions,
                pretrain_predictions,
                category_vocab,
                n_pseudo_labeled: pseudo_docs.len(),
            },
            clf,
        )
    }

    /// Fit a frozen per-document serving model: category vocabulary and MCP
    /// pseudo labels run (or replay from the warm store) exactly as in
    /// [`LotClass::run`], and the step-3 classifier is retained instead of
    /// being discarded. The model scores one document from its mean-pooled
    /// PLM representation, so its output never depends on the batch.
    pub fn fit_model(&self, dataset: &Dataset, plm: &MiniPlm) -> LotClassModel {
        use structmine_store::Stage;
        let _stage = structmine_store::context::stage_guard("lotclass/fit-model");
        let store = structmine_store::global();
        let vocab_stage = CategoryVocabStage {
            cfg: self,
            dataset,
            plm,
        };
        let vocab_key = vocab_stage.key();
        let category_vocab = store.run(&vocab_stage);
        let mcp = store.run(&McpStage {
            cfg: self,
            dataset,
            plm,
            category_vocab: &category_vocab,
            upstream: &vocab_key,
        });
        let (output, clf) =
            self.classify_full(dataset, plm, (*category_vocab).clone(), (*mcp).clone());
        LotClassModel {
            category_vocab: output.category_vocab,
            clf,
        }
    }

    /// Replacement counts at random masked slots across the corpus — the
    /// background distribution against which name-slot replacements are
    /// scored. Stopword-like words are predicted everywhere, so their
    /// *lift* (name-slot count / background count) is ~1 and they sink,
    /// playing the role of LOTClass's stopword filtering without a list.
    fn background_replacement_counts(
        &self,
        dataset: &Dataset,
        plm: &MiniPlm,
    ) -> std::collections::HashMap<TokenId, u32> {
        let mut rng = structmine_linalg::rng::seeded(self.seed ^ 0xB6);
        let budget = plm.config.max_len - 2;
        let n_samples = 60.min(dataset.corpus.len());
        // Draw every sampled slot serially first (the RNG stream must not
        // depend on the thread count), then run the expensive MLM queries in
        // parallel. Count merging is a commutative sum, so the result is
        // identical however the per-sample lists are interleaved.
        let mut plan: Vec<(usize, usize)> = Vec::with_capacity(n_samples);
        for s in 0..n_samples {
            use rand::Rng;
            let di = (s * dataset.corpus.len() / n_samples) % dataset.corpus.len();
            let doc = &dataset.corpus.docs[di];
            if doc.tokens.is_empty() {
                continue;
            }
            let p = rng.gen_range(0..doc.tokens.len().min(budget));
            plan.push((di, p));
        }
        let tops = par_map_chunks(&self.exec, &plan, |_, &(di, p)| {
            let mut seq = plm.wrap(&dataset.corpus.docs[di].tokens);
            seq[p + 1] = structmine_text::vocab::MASK;
            plm.mlm_topk(&seq, p + 1, self.replacements_per_occurrence)
        });
        let mut counts = std::collections::HashMap::new();
        for top in tops {
            for (r, _) in top {
                *counts.entry(r).or_insert(0) += 1;
            }
        }
        counts
    }

    /// Collect MLM replacements at occurrences of the label name, scored by
    /// lift over the background replacement distribution.
    fn build_category_vocab(
        &self,
        dataset: &Dataset,
        plm: &MiniPlm,
        name: &[TokenId],
        background: &std::collections::HashMap<TokenId, u32>,
    ) -> Vec<(TokenId, u32)> {
        let mut counts: std::collections::HashMap<TokenId, u32> = std::collections::HashMap::new();
        // The name tokens themselves always belong to the vocabulary.
        for &t in name {
            counts.insert(t, u32::MAX / 2);
        }
        let budget = plm.config.max_len - 2;
        // Serial plan: find the capped occurrence list with a cheap token
        // scan, preserving the early-break semantics. The MLM queries — the
        // expensive part — then run under the policy; count merging is a
        // commutative sum.
        let mut plan: Vec<(usize, usize)> = Vec::new();
        'outer: for (di, doc) in dataset.corpus.docs.iter().enumerate() {
            for (p, &t) in doc.tokens.iter().take(budget).enumerate() {
                if !name.contains(&t) {
                    continue;
                }
                plan.push((di, p));
                if plan.len() >= self.occurrences_cap {
                    break 'outer;
                }
            }
        }
        let seen = plan.len();
        let tops = par_map_chunks(&self.exec, &plan, |_, &(di, p)| {
            // Mask the occurrence and ask the MLM what could stand there.
            let mut seq = plm.wrap(&dataset.corpus.docs[di].tokens);
            seq[p + 1] = structmine_text::vocab::MASK;
            plm.mlm_topk(&seq, p + 1, self.replacements_per_occurrence)
        });
        for top in tops {
            for (r, _) in top {
                // Keep replacements that are real local-corpus words (the
                // MLM also hallucinates pretraining-domain words absent
                // from this corpus).
                if !Vocab::is_special(r) && dataset.corpus.vocab.count(r) >= 3 {
                    *counts.entry(r).or_insert(0) += 1;
                }
            }
        }
        // Score by lift: how much more often does the MLM predict this word
        // at *name* slots than at random slots?
        let occ = seen.max(1) as f32;
        let bg_total: u32 = background.values().sum();
        let bg_norm = (bg_total as f32 / self.replacements_per_occurrence as f32).max(1.0);
        let mut scored: Vec<(TokenId, u32)> = counts
            .into_iter()
            .filter_map(|(t, c)| {
                if c >= u32::MAX / 2 {
                    return Some((t, c)); // pinned name tokens
                }
                let rate_here = c as f32 / occ;
                let rate_bg = background.get(&t).copied().unwrap_or(0) as f32 / bg_norm;
                // Stopword-like words appear at more than half of *random*
                // slots; drop them outright.
                if rate_bg > 0.5 {
                    return None;
                }
                // Pure lift: topical words appear at name slots far above
                // their background rate.
                let lift = rate_here / (rate_bg + 0.05);
                Some((t, (lift * 1000.0) as u32))
            })
            .collect();
        scored.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        // Keep an oversized list; the caller resolves cross-category words.
        scored.truncate(self.category_vocab_size * 2);
        scored
    }
}

/// A frozen LOTClass serving model: the discovered category vocabularies
/// plus the trained (self-trained) classifier over mean-pooled PLM
/// features. Applies a per-document rule, so a document's output never
/// depends on its batch.
pub struct LotClassModel {
    /// The discovered category vocabularies.
    pub category_vocab: Vec<Vec<TokenId>>,
    clf: MlpClassifier,
}

impl LotClassModel {
    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.clf.n_classes()
    }

    /// Per-class probabilities for one document's mean-pooled PLM
    /// representation (see [`MiniPlm::mean_embed`]).
    pub fn predict_proba(&self, mean_rep: &[f32]) -> Vec<f32> {
        let x = Matrix::from_rows(&[mean_rep]);
        self.clf.predict_proba(&x).row(0).to_vec()
    }
}

/// The paper's Table 1 demo: MLM predictions for the same surface word in
/// two different contexts. Returns the top replacement words per context;
/// errors when a context does not contain the word.
pub fn replacement_demo(
    plm: &MiniPlm,
    corpus_vocab: &structmine_text::Vocab,
    contexts: &[Vec<TokenId>],
    word: TokenId,
    k: usize,
) -> Result<Vec<Vec<(String, f32)>>, crate::error::MethodError> {
    contexts
        .iter()
        .map(|ctx| {
            let pos = ctx.iter().position(|&t| t == word).ok_or_else(|| {
                crate::error::MethodError::MissingWord {
                    method: "LOTClass",
                    what: format!(
                        "demo word `{}` does not occur in the given context",
                        corpus_vocab.word(word)
                    ),
                }
            })?;
            // Mask the slot, as in the method: the MLM head is trained to
            // predict at masked positions.
            let mut seq = plm.wrap(ctx);
            seq[pos + 1] = structmine_text::vocab::MASK;
            Ok(plm
                .mlm_topk(&seq, pos + 1, k)
                .into_iter()
                .map(|(t, p)| (corpus_vocab.word(t).to_string(), p))
                .collect())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use structmine_eval::accuracy;
    use structmine_plm::cache::{pretrained, Tier};
    use structmine_text::synth::recipes;

    #[test]
    fn category_vocab_contains_topical_words() {
        let d = recipes::agnews(0.1, 31).unwrap();
        let plm = pretrained(Tier::Test, 0);
        let out = LotClass {
            self_train: false,
            ..Default::default()
        }
        .run(&d, &plm);
        let sports_idx = d.labels.names.iter().position(|n| n == "sports").unwrap();
        let vocab = &out.category_vocab[sports_idx];
        assert!(!vocab.is_empty());
        // Sports-related words span several lexicons (the MLM legitimately
        // replaces "sports" with words from specific sports and athletics).
        let sporty: std::collections::HashSet<&str> = [
            "sports",
            "soccer",
            "basketball",
            "baseball",
            "tennis",
            "hockey",
            "golf",
            "football",
            "ont_athlete",
        ]
        .iter()
        .flat_map(|l| structmine_text::synth::lexicon::lexicon(l).iter().copied())
        .collect();
        let lex = structmine_text::synth::lexicon::lexicon("sports");
        let topical = vocab
            .iter()
            .filter(|&&t| sporty.contains(&d.corpus.vocab.word(t)))
            .count();
        assert!(
            topical >= 4,
            "too few sporty words in category vocab: {:?}",
            vocab
                .iter()
                .map(|&t| d.corpus.vocab.word(t))
                .collect::<Vec<_>>()
        );
        // The *top* of the list — what masked category prediction leans on —
        // must be dominated by sports words.
        let top5_sporty = vocab
            .iter()
            .take(5)
            .filter(|&&t| sporty.contains(&d.corpus.vocab.word(t)))
            .count();
        assert!(
            top5_sporty >= 3,
            "top of category vocab not sporty: {:?}",
            vocab
                .iter()
                .take(5)
                .map(|&t| d.corpus.vocab.word(t))
                .collect::<Vec<_>>()
        );
        for other in ["business", "world"] {
            let other_lex = structmine_text::synth::lexicon::lexicon(other);
            let wrong = vocab
                .iter()
                .filter(|&&t| {
                    let w = d.corpus.vocab.word(t);
                    other_lex.contains(&w) && !lex.contains(&w)
                })
                .count();
            assert!(wrong <= 4, "sports vocab polluted by {other}");
        }
    }

    #[test]
    fn lotclass_labels_most_docs_and_beats_chance() {
        let d = recipes::agnews(0.1, 32).unwrap();
        let plm = pretrained(Tier::Test, 0);
        let out = LotClass::default().run(&d, &plm);
        assert!(
            out.n_pseudo_labeled * 2 > d.corpus.len(),
            "too few pseudo labels: {}",
            out.n_pseudo_labeled
        );
        let acc = accuracy(&common::test_slice(&d, &out.predictions), &d.test_gold());
        assert!(acc > 0.5, "LOTClass acc {acc}");
    }

    #[test]
    fn fitted_model_reproduces_run_predictions_per_document() {
        let d = recipes::agnews(0.06, 35).unwrap();
        let plm = pretrained(Tier::Test, 0);
        let cfg = LotClass::default();
        let out = cfg.run(&d, &plm);
        let model = cfg.fit_model(&d, &plm);
        assert_eq!(model.n_classes(), d.n_classes());
        for (i, doc) in d.corpus.docs.iter().enumerate() {
            let probs = model.predict_proba(&plm.mean_embed(&doc.tokens));
            let pred = vector::argmax(&probs).unwrap_or(0);
            assert_eq!(
                pred, out.predictions[i],
                "doc {i} diverges from the batch pipeline"
            );
        }
    }

    #[test]
    fn self_training_does_not_regress() {
        let d = recipes::agnews(0.08, 33).unwrap();
        let plm = pretrained(Tier::Test, 0);
        let out = LotClass::default().run(&d, &plm);
        let gold = d.test_gold();
        let pre = accuracy(&common::test_slice(&d, &out.pretrain_predictions), &gold);
        let post = accuracy(&common::test_slice(&d, &out.predictions), &gold);
        assert!(
            post >= pre - 0.05,
            "self-training regressed {pre} -> {post}"
        );
    }

    #[test]
    fn replacement_demo_shows_context_sensitivity() {
        let d = recipes::agnews(0.05, 34).unwrap();
        let plm = pretrained(Tier::Test, 0);
        let v = &d.corpus.vocab;
        let id = |w: &str| v.id(w).unwrap();
        // "pitch" in a soccer context vs a music context.
        let soccer_ctx = vec![
            id("soccer"),
            id("striker"),
            id("pitch"),
            id("goal"),
            id("keeper"),
        ];
        let music_ctx = vec![
            id("band"),
            id("singer"),
            id("pitch"),
            id("melody"),
            id("concert"),
        ];
        let demos = replacement_demo(&plm, v, &[soccer_ctx, music_ctx], id("pitch"), 10).unwrap();
        assert_eq!(demos.len(), 2);
        assert_eq!(demos[0].len(), 10);
        // The two contexts should induce different replacement lists.
        let a: std::collections::HashSet<_> = demos[0].iter().map(|(w, _)| w.clone()).collect();
        let b: std::collections::HashSet<_> = demos[1].iter().map(|(w, _)| w.clone()).collect();
        assert_ne!(a, b, "contexts produced identical replacements");
    }
}
