//! Whole-run memoization of method pipelines through the artifact store.
//!
//! Every method's `run()` entry point is lifted into the store's stage
//! graph: its fingerprint covers the dataset content, the supervision, the
//! backbone (PLM weights or word vectors), and every hyper-parameter — but
//! never the execution policy's *thread count*, which cannot change
//! outputs (parallel execution is bitwise deterministic; see
//! `structmine_linalg::exec`). The policy's precision tier is the one
//! policy bit that *is* hashed, and only by methods that run PLM
//! inference: the Fast tier swaps in approximate kernels, so its outputs
//! must never be served from (or into) an Exact cache entry. The
//! `run_uncached` variants keep the actual algorithms; `run` consults the
//! global [`structmine_store::ArtifactStore`] first, so a re-run of a
//! benchmark binary skips every already-computed method and goes straight
//! to table assembly.
//!
//! This is also the crash-resume contract: because every method run (and
//! every expensive PLM stage beneath it) persists at a stage boundary, a
//! run killed at any point resumes from the last persisted stage with
//! bitwise-identical output. The store absorbs disk failures — a lost or
//! corrupt artifact only costs a recompute, and `run_uncached` labels its
//! stage via `structmine_store::context` so failures deep in the parallel
//! layer can name the method they happened in.

use structmine_store::{Artifact, StableHasher, Stage};

/// A whole method run as one content-addressed stage.
struct MethodRun<F> {
    name: &'static str,
    digest: u128,
    compute: F,
}

impl<T, F> Stage for MethodRun<F>
where
    T: Artifact,
    F: Fn() -> T,
{
    type Output = T;

    fn name(&self) -> &'static str {
        self.name
    }

    fn fingerprint(&self, h: &mut StableHasher) {
        h.write_u128(self.digest);
    }

    fn compute(&self) -> T {
        (self.compute)()
    }
}

/// Run `compute` through the global artifact store under `name`, keyed by
/// whatever `fingerprint` writes. Returns the (possibly cached) output by
/// clone — method outputs are small prediction/keyword containers.
pub(crate) fn run_memoized<T, F>(
    name: &'static str,
    fingerprint: impl FnOnce(&mut StableHasher),
    compute: F,
) -> T
where
    T: Artifact + Clone,
    F: Fn() -> T,
{
    let mut h = StableHasher::new();
    fingerprint(&mut h);
    let stage = MethodRun {
        name,
        digest: h.finish(),
        compute,
    };
    (*structmine_store::global().run(&stage)).clone()
}
