//! `structmine` — weakly-supervised text classification by exploring the
//! power of pre-trained language models.
//!
//! This crate implements every method presented in Part III of the EDBT'23
//! tutorial *"Mining Structures from Massive Texts by Exploring the Power of
//! Pre-trained Language Models"* (Zhang, Zhang & Han), plus the baselines
//! its evaluation tables compare against:
//!
//! | Module | Method | Supervision | Backbone |
//! |---|---|---|---|
//! | [`westclass`] | WeSTClass (CIKM'18) | names / keywords / docs | static embedding |
//! | [`conwea`] | ConWea (ACL'20) | keywords | PLM contextualization |
//! | [`lotclass`] | LOTClass (EMNLP'20) | names | PLM MLM head |
//! | [`xclass`] | X-Class (NAACL'21) | names | PLM representations |
//! | [`promptclass`] | prompt-based 0-shot + iterative fine-tuning | names | PLM MLM/RTD heads |
//! | [`weshclass`] | WeSHClass (AAAI'19) | keywords / docs + tree | static embedding |
//! | [`taxoclass`] | TaxoClass (NAACL'21) | names + DAG | PLM NLI head |
//! | [`metacat`] | MetaCat (SIGIR'20) | few docs + metadata | HIN embedding |
//! | [`micol`] | MICoL (WWW'22) | names/descriptions + metadata | PLM contrastive |
//! | [`baselines`] | IR-TF-IDF, Dataless, Word2Vec, topic-model, BERT-match, zero-shot entail, supervised bounds | — | — |
//!
//! Every method consumes a [`structmine_text::Dataset`] (usually from
//! `structmine_text::synth::recipes`), a [`structmine_text::Supervision`]
//! and whatever backbone it needs (a `structmine_embed::WordVectors` or a
//! `structmine_plm::MiniPlm`), and produces predictions for **all**
//! documents in the corpus — the transductive setting the papers evaluate
//! in. Callers score the test split with `structmine_eval`.
//!
//! # Quickstart
//! ```no_run
//! use structmine::prelude::*;
//!
//! let data = structmine_text::synth::recipes::agnews(0.2, 7).unwrap();
//! let plm = structmine_plm::cache::pretrained(structmine_plm::cache::Tier::Standard, 7);
//! let out = structmine::xclass::XClass::default().run(&data, &plm);
//! let acc = structmine_eval::accuracy(
//!     &data.test_idx.iter().map(|&i| out.predictions[i]).collect::<Vec<_>>(),
//!     &data.test_gold(),
//! );
//! println!("X-Class accuracy: {acc:.3}");
//! ```

pub mod baselines;
pub mod common;
pub mod conwea;
pub mod error;
pub mod lotclass;
pub mod metacat;
pub mod micol;
pub(crate) mod pipeline;
pub mod promptclass;
pub mod taxoclass;
pub mod weshclass;
pub mod westclass;
pub mod xclass;

pub use error::MethodError;

/// Convenient glob-import of the method entry points.
pub mod prelude {
    pub use crate::baselines;
    pub use crate::conwea::ConWea;
    pub use crate::error::MethodError;
    pub use crate::lotclass::LotClass;
    pub use crate::metacat::MetaCat;
    pub use crate::micol::MiCoL;
    pub use crate::promptclass::PromptClass;
    pub use crate::taxoclass::TaxoClass;
    pub use crate::weshclass::WeSHClass;
    pub use crate::westclass::WeSTClass;
    pub use crate::xclass::XClass;
}
