//! Prompt-based weakly-supervised classification (the tutorial's
//! "PromptClass" section): zero-shot prompting for pseudo-label
//! acquisition, then iterative co-training of a head-token classifier with
//! prompt-based scoring.
//!
//! Two prompt styles are supported, mirroring the paper's backbones:
//! * **MLM / cloze** (RoBERTa-style): score each label word's probability
//!   at a `[MASK]` in `... [SEP] about [MASK] [SEP]`.
//! * **RTD** (ELECTRA-style): append `about <label>` and score how
//!   *un-replaced* the label word looks to the discriminative head —
//!   reusing the pretrained RTD head instead of a randomly initialized
//!   classification head.
//!
//! The full method: (1) zero-shot prompt scores give pseudo labels for the
//! most confident documents per class; (2) a head classifier is trained on
//! them; (3) classifier and prompt probabilities are blended, the
//! confident set grows, and the loop repeats.

use crate::common;
use crate::error::MethodError;
use structmine_linalg::exec::{par_map_chunks, ExecPolicy};
use structmine_linalg::{stats, Matrix};
use structmine_nn::classifiers::{MlpClassifier, TrainConfig};
use structmine_plm::prompt;
use structmine_plm::MiniPlm;
use structmine_text::Dataset;

/// Prompt scoring backbone.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PromptStyle {
    /// Cloze / masked-token scoring (RoBERTa-style).
    Mlm,
    /// Replaced-token-detection scoring (ELECTRA-style).
    Rtd,
}

/// PromptClass hyper-parameters.
#[derive(Clone, Copy, Debug)]
pub struct PromptClass {
    /// Zero-shot scoring backbone.
    pub style: PromptStyle,
    /// Co-training iterations (0 = zero-shot only).
    pub iterations: usize,
    /// Initial confident documents per class.
    pub initial_quota: usize,
    /// Quota growth factor per iteration.
    pub quota_growth: f32,
    /// Blend weight of prompt scores vs classifier probabilities.
    pub prompt_weight: f32,
    /// Classifier hidden width.
    pub hidden: usize,
    /// RNG seed.
    pub seed: u64,
    /// Execution policy for the prompt scoring and corpus encode. The
    /// thread count never changes bits; the precision tier does, and is
    /// part of the memo key.
    pub exec: ExecPolicy,
}

impl Default for PromptClass {
    fn default() -> Self {
        PromptClass {
            style: PromptStyle::Rtd,
            iterations: 3,
            initial_quota: 20,
            quota_growth: 2.0,
            prompt_weight: 0.5,
            hidden: 32,
            seed: 91,
            exec: ExecPolicy::default(),
        }
    }
}

impl structmine_store::StableHash for PromptClass {
    /// Every hyper-parameter plus the policy's precision tier. The thread
    /// count is excluded (it cannot change outputs, so cached runs stay
    /// valid across thread counts), but the precision tier swaps in
    /// approximate kernels and *does* change bits — Exact and Fast runs
    /// must never share a cache entry.
    fn stable_hash(&self, h: &mut structmine_store::StableHasher) {
        h.write_u64(match self.style {
            PromptStyle::Mlm => 0,
            PromptStyle::Rtd => 1,
        });
        self.iterations.stable_hash(h);
        self.initial_quota.stable_hash(h);
        self.quota_growth.stable_hash(h);
        self.prompt_weight.stable_hash(h);
        self.hidden.stable_hash(h);
        self.seed.stable_hash(h);
        self.exec.precision().stable_hash(h);
    }
}

/// PromptClass outputs.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct PromptClassOutput {
    /// Final per-document predictions.
    pub predictions: Vec<usize>,
    /// Zero-shot (prompt-only) predictions.
    pub zero_shot_predictions: Vec<usize>,
}

impl PromptClass {
    /// Zero-shot prompting only (the RoBERTa (0-shot) / ELECTRA (0-shot)
    /// rows).
    pub fn zero_shot(&self, dataset: &Dataset, plm: &MiniPlm) -> Vec<usize> {
        let scores = self.prompt_scores(dataset, plm);
        (0..scores.rows())
            .map(|i| structmine_linalg::vector::argmax(scores.row(i)).unwrap_or(0))
            .collect()
    }

    /// Surface a prompt-template word missing from the corpus vocabulary
    /// as a typed error, once, up front — instead of a panic per document
    /// inside the parallel prompt loop.
    fn validate(dataset: &Dataset) -> Result<(), MethodError> {
        prompt::validate_templates(&dataset.corpus.vocab).map_err(|e| MethodError::MissingWord {
            method: "PromptClass",
            what: e.to_string(),
        })
    }

    /// Full pipeline: zero-shot pseudo labels + iterative co-training,
    /// memoized through the global artifact store (keyed on dataset, PLM
    /// weights, and every hyper-parameter). Errors when a prompt template
    /// word is missing from the corpus vocabulary.
    pub fn run(&self, dataset: &Dataset, plm: &MiniPlm) -> Result<PromptClassOutput, MethodError> {
        use structmine_store::StableHash;
        Self::validate(dataset)?;
        Ok(crate::pipeline::run_memoized(
            "promptclass/predict",
            |h| {
                h.write_u128(dataset.fingerprint());
                h.write_u128(plm.fingerprint());
                self.stable_hash(h);
            },
            || self.run_validated(dataset, plm),
        ))
    }

    /// Full pipeline, bypassing the artifact store.
    pub fn run_uncached(
        &self,
        dataset: &Dataset,
        plm: &MiniPlm,
    ) -> Result<PromptClassOutput, MethodError> {
        Self::validate(dataset)?;
        Ok(self.run_validated(dataset, plm))
    }

    /// The pipeline proper, over pre-validated templates.
    fn run_validated(&self, dataset: &Dataset, plm: &MiniPlm) -> PromptClassOutput {
        let _stage = structmine_store::context::stage_guard("promptclass/run");
        let n_classes = dataset.n_classes();
        let prompt_scores =
            structmine_store::context::with_stage_label("promptclass/prompt", || {
                self.prompt_scores(dataset, plm)
            });
        // Normalize prompt scores into per-document distributions.
        let prompt_probs = common::softmax_rows(prompt_scores.scale(24.0));
        let zero_shot_predictions: Vec<usize> = (0..prompt_probs.rows())
            .map(|i| structmine_linalg::vector::argmax(prompt_probs.row(i)).unwrap_or(0))
            .collect();

        let _sub = structmine_store::context::stage_guard("promptclass/co-train");
        let features = common::plm_features_with(dataset, plm, &self.exec);
        let mut blended = prompt_probs.clone();
        let mut clf = MlpClassifier::new(features.cols(), self.hidden, n_classes, self.seed);
        let mut quota = self.initial_quota.max(1);

        for it in 0..self.iterations {
            let (docs, labels) = common::most_confident_per_class(&blended, quota);
            if docs.is_empty() {
                break;
            }
            let x = features.select_rows(&docs);
            let t = structmine_nn::classifiers::one_hot(&labels, n_classes, 0.1);
            clf.fit(
                &x,
                &t,
                &TrainConfig {
                    epochs: 25,
                    seed: self.seed ^ it as u64,
                    ..Default::default()
                },
            );
            let clf_probs = clf.predict_proba(&features);
            // Blend prompt and classifier views (co-training) and sharpen.
            blended = Matrix::zeros(clf_probs.rows(), n_classes);
            for i in 0..clf_probs.rows() {
                let mut row: Vec<f32> = (0..n_classes)
                    .map(|c| {
                        self.prompt_weight * prompt_probs.get(i, c)
                            + (1.0 - self.prompt_weight) * clf_probs.get(i, c)
                    })
                    .collect();
                row = stats::sharpen(&row, 0.7);
                blended.row_mut(i).copy_from_slice(&row);
            }
            quota = ((quota as f32) * self.quota_growth) as usize;
        }

        let predictions = clf.predict(&features);
        PromptClassOutput {
            predictions,
            zero_shot_predictions,
        }
    }

    fn prompt_scores(&self, dataset: &Dataset, plm: &MiniPlm) -> Matrix {
        let names = dataset.label_name_tokens();
        let vocab = &dataset.corpus.vocab;
        // Templates were validated up front by the run() entry points.
        let prec = self.exec.precision();
        // Each document's prompt query is independent; rows come back in
        // document order regardless of the thread count.
        let rows = par_map_chunks(&self.exec, &dataset.corpus.docs, |_, doc| {
            match self.style {
                PromptStyle::Mlm => prompt::cloze_label_scores(plm, &doc.tokens, &names, vocab),
                PromptStyle::Rtd => {
                    prompt::rtd_label_scores_prec(plm, &doc.tokens, &names, vocab, prec)
                }
            }
            // Unreachable: templates were validated above.
            .unwrap_or_else(|_| vec![0.0; names.len()])
        });
        if rows.is_empty() {
            return Matrix::zeros(0, names.len());
        }
        let refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
        Matrix::from_rows(&refs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use structmine_eval::accuracy;
    use structmine_plm::cache::{pretrained, Tier};
    use structmine_text::synth::recipes;

    fn acc(d: &Dataset, preds: &[usize]) -> f32 {
        accuracy(&common::test_slice(d, preds), &d.test_gold())
    }

    #[test]
    fn mlm_zero_shot_beats_chance() {
        let d = recipes::agnews(0.08, 51).unwrap();
        let plm = pretrained(Tier::Test, 0);
        let preds = PromptClass {
            style: PromptStyle::Mlm,
            ..Default::default()
        }
        .zero_shot(&d, &plm);
        let a = acc(&d, &preds);
        assert!(a > 0.35, "MLM zero-shot acc {a}");
    }

    #[test]
    fn full_pipeline_improves_on_zero_shot_or_ties() {
        let d = recipes::agnews(0.08, 52).unwrap();
        let plm = pretrained(Tier::Test, 0);
        let out = PromptClass {
            style: PromptStyle::Mlm,
            ..Default::default()
        }
        .run(&d, &plm)
        .unwrap();
        let zs = acc(&d, &out.zero_shot_predictions);
        let full = acc(&d, &out.predictions);
        assert!(full >= zs - 0.05, "co-training regressed: {zs} -> {full}");
        assert!(full > 0.4, "PromptClass acc {full}");
    }

    #[test]
    fn rtd_style_produces_valid_predictions() {
        let d = recipes::yelp(0.06, 53).unwrap();
        let plm = pretrained(Tier::Test, 0);
        let out = PromptClass {
            style: PromptStyle::Rtd,
            iterations: 2,
            ..Default::default()
        }
        .run(&d, &plm)
        .unwrap();
        assert_eq!(out.predictions.len(), d.corpus.len());
        assert!(out.predictions.iter().all(|&p| p < d.n_classes()));
    }
}
