//! MICoL — metadata-induced contrastive learning for zero-shot multi-label
//! text classification (Zhang et al., WWW 2022).
//!
//! No labeled documents exist; labels have names and descriptions, and
//! documents carry metadata (venues, authors, references). Instead of
//! teaching the model "what is what", MICoL teaches it "what is similar to
//! what": meta-paths over the metadata graph define similar
//! (document, document) pairs —
//! `P→P←P` (two papers citing the same paper) and `P←(PP)→P` (two papers
//! cited by the same paper) — and an encoder is fine-tuned contrastively on
//! those pairs. At inference, labels are ranked by encoder similarity
//! between the document and the label's name + description.
//!
//! Two encoders mirror the paper: a **bi-encoder** (projection over frozen
//! PLM features, InfoNCE with in-batch negatives) and a **cross-encoder**
//! (an interaction MLP over both representations, trained pair-wise).

use crate::common;
use rand::Rng;
use structmine_linalg::exec::{par_map_chunks, ExecPolicy};
use structmine_linalg::{rng as lrng, vector, Matrix};
use structmine_nn::classifiers::{MlpClassifier, TrainConfig};
use structmine_nn::graph::Graph;
use structmine_nn::params::{Adam, Binding, ParamStore};
use structmine_plm::MiniPlm;
use structmine_text::Dataset;

/// Meta-path defining positive document pairs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetaPath {
    /// `P→P←P`: two documents citing the same document.
    SharedReference,
    /// `P←(PP)→P`: two documents cited by the same document.
    CoCited,
    /// Documents sharing a venue.
    SharedVenue,
    /// Documents sharing an author.
    SharedAuthor,
}

/// Encoder architecture.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Encoder {
    /// Projection + cosine ranking, InfoNCE training.
    Bi,
    /// Interaction MLP scoring each (doc, label) pair.
    Cross,
}

/// MICoL hyper-parameters.
#[derive(Clone, Copy, Debug)]
pub struct MiCoL {
    /// Encoder architecture.
    pub encoder: Encoder,
    /// Meta-path for positive pairs.
    pub meta_path: MetaPath,
    /// Maximum positive pairs mined.
    pub max_pairs: usize,
    /// Contrastive training steps.
    pub steps: usize,
    /// Pairs per batch (bi-encoder: in-batch negatives).
    pub batch: usize,
    /// Learning rate.
    pub lr: f32,
    /// RNG seed.
    pub seed: u64,
    /// Execution policy for the PLM encodes (thread count; output is
    /// bitwise identical for any value).
    pub exec: ExecPolicy,
}

impl Default for MiCoL {
    fn default() -> Self {
        MiCoL {
            encoder: Encoder::Bi,
            meta_path: MetaPath::SharedReference,
            max_pairs: 4000,
            steps: 300,
            batch: 16,
            lr: 3e-3,
            seed: 131,
            exec: ExecPolicy::default(),
        }
    }
}

impl structmine_store::StableHash for MiCoL {
    /// Every hyper-parameter plus the policy's precision tier. The thread
    /// count is excluded (it cannot change outputs), but the precision
    /// tier swaps in approximate PLM inference kernels and *does* change
    /// bits — Exact and Fast runs must never share a cache entry.
    fn stable_hash(&self, h: &mut structmine_store::StableHasher) {
        h.write_u64(match self.encoder {
            Encoder::Bi => 0,
            Encoder::Cross => 1,
        });
        h.write_u64(match self.meta_path {
            MetaPath::SharedReference => 0,
            MetaPath::CoCited => 1,
            MetaPath::SharedVenue => 2,
            MetaPath::SharedAuthor => 3,
        });
        self.max_pairs.stable_hash(h);
        self.steps.stable_hash(h);
        self.batch.stable_hash(h);
        self.lr.stable_hash(h);
        self.seed.stable_hash(h);
        self.exec.precision().stable_hash(h);
    }
}

impl MiCoL {
    /// Run MICoL: returns, for every document, the full label ranking
    /// (best first). Memoized through the global artifact store (keyed on
    /// dataset, PLM weights, and every hyper-parameter).
    pub fn run(&self, dataset: &Dataset, plm: &MiniPlm) -> Vec<Vec<usize>> {
        use structmine_store::StableHash;
        crate::pipeline::run_memoized(
            "micol/rank",
            |h| {
                h.write_u128(dataset.fingerprint());
                h.write_u128(plm.fingerprint());
                self.stable_hash(h);
            },
            || self.run_uncached(dataset, plm),
        )
    }

    /// Run MICoL, bypassing the artifact store.
    pub fn run_uncached(&self, dataset: &Dataset, plm: &MiniPlm) -> Vec<Vec<usize>> {
        use structmine_store::context::with_stage_label;
        let _stage = structmine_store::context::stage_guard("micol/run");
        let features = with_stage_label("micol/features", || {
            common::plm_features_with(dataset, plm, &self.exec)
        });
        let label_feats = label_features_with(dataset, plm, &self.exec);
        let pairs = with_stage_label("micol/mine-pairs", || {
            mine_pairs(dataset, self.meta_path, self.max_pairs, self.seed)
        });
        with_stage_label("micol/rank", || match self.encoder {
            Encoder::Bi => {
                let proj = train_bi_encoder(&features, &pairs, self, features.cols());
                rank_by_projection(&features, &label_feats, &proj)
            }
            Encoder::Cross => {
                let scorer = train_cross_encoder(&features, &pairs, self);
                rank_by_cross(&features, &label_feats, &scorer)
            }
        })
    }
}

/// Mine positive document pairs along a meta-path.
pub fn mine_pairs(dataset: &Dataset, path: MetaPath, cap: usize, seed: u64) -> Vec<(usize, usize)> {
    let mut pairs = Vec::new();
    match path {
        MetaPath::SharedReference => {
            // Group docs by each reference they cite. BTreeMap: the groups
            // are iterated below, and hash iteration order would make the
            // shuffled subsample differ from process to process.
            let mut by_ref: std::collections::BTreeMap<usize, Vec<usize>> =
                std::collections::BTreeMap::new();
            for (i, doc) in dataset.corpus.docs.iter().enumerate() {
                for &r in &doc.refs {
                    by_ref.entry(r).or_default().push(i);
                }
            }
            for group in by_ref.values() {
                for w in group.windows(2) {
                    pairs.push((w[0], w[1]));
                }
            }
        }
        MetaPath::CoCited => {
            for doc in &dataset.corpus.docs {
                for w in doc.refs.windows(2) {
                    pairs.push((w[0], w[1]));
                }
            }
        }
        MetaPath::SharedVenue => {
            let mut by_venue: std::collections::BTreeMap<usize, Vec<usize>> =
                std::collections::BTreeMap::new();
            for (i, doc) in dataset.corpus.docs.iter().enumerate() {
                if let Some(v) = doc.venue {
                    by_venue.entry(v).or_default().push(i);
                }
            }
            for group in by_venue.values() {
                for w in group.windows(2) {
                    pairs.push((w[0], w[1]));
                }
            }
        }
        MetaPath::SharedAuthor => {
            let mut by_author: std::collections::BTreeMap<usize, Vec<usize>> =
                std::collections::BTreeMap::new();
            for (i, doc) in dataset.corpus.docs.iter().enumerate() {
                for &a in &doc.authors {
                    by_author.entry(a).or_default().push(i);
                }
            }
            for group in by_author.values() {
                for w in group.windows(2) {
                    pairs.push((w[0], w[1]));
                }
            }
        }
    }
    // Deterministic subsample.
    use rand::seq::SliceRandom;
    let mut rng = lrng::seeded(seed);
    pairs.shuffle(&mut rng);
    pairs.truncate(cap);
    pairs
}

/// PLM features of each label's name + description.
pub fn label_features(dataset: &Dataset, plm: &MiniPlm) -> Matrix {
    label_features_with(dataset, plm, ExecPolicy::global())
}

/// [`label_features`] under an explicit execution policy.
pub fn label_features_with(dataset: &Dataset, plm: &MiniPlm, policy: &ExecPolicy) -> Matrix {
    let hyps = crate::taxoclass::class_hypotheses(dataset);
    let rows = par_map_chunks(policy, &hyps, |_, h| plm.mean_embed(h));
    let refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
    Matrix::from_rows(&refs)
}

/// InfoNCE training of a linear projection over frozen features.
fn train_bi_encoder(features: &Matrix, pairs: &[(usize, usize)], cfg: &MiCoL, d: usize) -> Matrix {
    let mut store = ParamStore::new();
    let mut rng = lrng::seeded(cfg.seed);
    // Initialize near identity so the frozen-feature geometry is the prior.
    let mut init = Matrix::identity(d);
    for v in init.data_mut() {
        *v += lrng::gaussian(&mut rng) * 0.01;
    }
    let w = store.add("proj", init);
    let mut adam = Adam::new(&store, cfg.lr, 5.0);
    let temp = (d as f32).sqrt();
    if pairs.is_empty() {
        return store.value(w).clone();
    }
    // Anchor strength: labels are encoded by the same projection but never
    // appear in training pairs, so W is regularized toward identity to keep
    // the doc/label geometry compatible (the role full fine-tuning's small
    // learning rate plays in the paper).
    let anchor = 0.5f32;
    let identity = Matrix::identity(d);
    for _ in 0..cfg.steps {
        let batch: Vec<(usize, usize)> = (0..cfg.batch)
            .map(|_| pairs[rng.gen_range(0..pairs.len())])
            .collect();
        let a_idx: Vec<usize> = batch.iter().map(|&(a, _)| a).collect();
        let b_idx: Vec<usize> = batch.iter().map(|&(_, b)| b).collect();
        let mut g = Graph::new();
        let mut binding = Binding::new();
        let wl = store.bind(&mut g, w, &mut binding);
        let fa = g.leaf(features.select_rows(&a_idx));
        let fb = g.leaf(features.select_rows(&b_idx));
        let pa = g.matmul(fa, wl);
        let pb = g.matmul(fb, wl);
        let pbt = g.transpose(pb);
        let logits = g.matmul(pa, pbt);
        let scaled = g.scale(logits, 1.0 / temp);
        let targets = Matrix::identity(cfg.batch);
        let nce = g.softmax_cross_entropy(scaled, &targets);
        // || W - I ||^2 anchor.
        let neg_i = g.leaf(identity.scale(-1.0));
        let diff = g.add(wl, neg_i);
        let sq = g.mul(diff, diff);
        let ones_r = g.leaf(Matrix::filled(1, d, 1.0));
        let ones_c = g.leaf(Matrix::filled(d, 1, 1.0));
        let rowsum = g.matmul(ones_r, sq);
        let fro = g.matmul(rowsum, ones_c);
        let penalty = g.scale(fro, anchor / d as f32);
        let loss = g.add(nce, penalty);
        g.backward(loss);
        adam.step(&mut store, &g, &binding);
    }
    store.value(w).clone()
}

fn rank_by_projection(features: &Matrix, labels: &Matrix, proj: &Matrix) -> Vec<Vec<usize>> {
    let pf = features.matmul(proj);
    let pl = labels.matmul(proj);
    (0..pf.rows())
        .map(|i| {
            let scores: Vec<f32> = (0..pl.rows())
                .map(|c| vector::cosine(pf.row(i), pl.row(c)))
                .collect();
            vector::top_k(&scores, pl.rows())
        })
        .collect()
}

/// Interaction features for a (u, v) pair: `[u ⊙ v, |u - v|]`.
fn interaction(u: &[f32], v: &[f32]) -> Vec<f32> {
    let mut out = Vec::with_capacity(u.len() * 2);
    out.extend(u.iter().zip(v).map(|(a, b)| a * b));
    out.extend(u.iter().zip(v).map(|(a, b)| (a - b).abs()));
    out
}

/// Pairwise trained interaction MLP (the cross-encoder stand-in: the true
/// cross-encoder runs the transformer over the concatenated pair; at our
/// scale a late-interaction MLP over frozen features preserves its role —
/// see DESIGN.md).
fn train_cross_encoder(features: &Matrix, pairs: &[(usize, usize)], cfg: &MiCoL) -> MlpClassifier {
    let d = features.cols();
    let mut clf = MlpClassifier::new(2 * d, 32, 2, cfg.seed);
    if pairs.is_empty() {
        return clf;
    }
    let mut rng = lrng::seeded(cfg.seed ^ 3);
    let n_pos = pairs.len().min(cfg.steps * cfg.batch / 2).max(1);
    let mut x_data = Vec::new();
    let mut y = Vec::new();
    for k in 0..n_pos {
        let (a, b) = pairs[k % pairs.len()];
        x_data.extend(interaction(features.row(a), features.row(b)));
        y.push(1usize);
        // Random negative.
        let (na, nb) = (
            rng.gen_range(0..features.rows()),
            rng.gen_range(0..features.rows()),
        );
        x_data.extend(interaction(features.row(na), features.row(nb)));
        y.push(0);
    }
    let x = Matrix::from_vec(y.len(), 2 * d, x_data);
    let targets = structmine_nn::classifiers::one_hot(&y, 2, 0.05);
    clf.fit(
        &x,
        &targets,
        &TrainConfig {
            epochs: 15,
            seed: cfg.seed,
            ..Default::default()
        },
    );
    clf
}

fn rank_by_cross(features: &Matrix, labels: &Matrix, scorer: &MlpClassifier) -> Vec<Vec<usize>> {
    let n_labels = labels.rows();
    (0..features.rows())
        .map(|i| {
            let mut x_data = Vec::with_capacity(n_labels * features.cols() * 2);
            for c in 0..n_labels {
                x_data.extend(interaction(features.row(i), labels.row(c)));
            }
            let x = Matrix::from_vec(n_labels, 2 * features.cols(), x_data);
            let probs = scorer.predict_proba(&x);
            let scores: Vec<f32> = (0..n_labels).map(|c| probs.get(c, 1)).collect();
            vector::top_k(&scores, n_labels)
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Baselines for the MICoL table
// ---------------------------------------------------------------------------

/// Doc2Vec baseline: PV-DBOW over the corpus with label descriptions
/// appended as extra "documents"; rank by cosine.
pub fn doc2vec_ranking(dataset: &Dataset, seed: u64) -> Vec<Vec<usize>> {
    let hyps = crate::taxoclass::class_hypotheses(dataset);
    let mut corpus = dataset.corpus.clone();
    let n = corpus.len();
    for h in &hyps {
        corpus
            .docs
            .push(structmine_text::Doc::from_tokens(h.clone()));
    }
    let vecs = structmine_embed::docvec::Pvdbow {
        seed,
        ..Default::default()
    }
    .train(&corpus);
    (0..n)
        .map(|i| {
            let scores: Vec<f32> = (0..hyps.len())
                .map(|c| vector::cosine(vecs.row(i), vecs.row(n + c)))
                .collect();
            vector::top_k(&scores, hyps.len())
        })
        .collect()
}

/// Frozen-PLM baseline (the SciBERT / SPECTER-without-training rows): rank
/// by raw representation cosine.
pub fn plm_rep_ranking(dataset: &Dataset, plm: &MiniPlm) -> Vec<Vec<usize>> {
    let features = common::plm_features(dataset, plm);
    let labels = label_features(dataset, plm);
    rank_by_projection(&features, &labels, &Matrix::identity(features.cols()))
}

/// Zero-shot entailment ranking (ZeroShot-Entail row). The entailment
/// matrix is memoized through the global artifact store.
pub fn entail_ranking(dataset: &Dataset, plm: &MiniPlm) -> Vec<Vec<usize>> {
    let hyps = crate::taxoclass::class_hypotheses(dataset);
    let stage = structmine_plm::artifacts::NliEntail {
        model: plm,
        corpus: &dataset.corpus,
        hypotheses: &hyps,
        exec: *ExecPolicy::global(),
    };
    let scores = structmine_store::global().run(&stage);
    (0..scores.rows())
        .map(|i| vector::top_k(scores.row(i), hyps.len()))
        .collect()
}

/// Text-augmentation contrastive baselines (EDA / UDA rows): positive pairs
/// are a document and its word-dropout (EDA) or word-substitution (UDA)
/// corruption — no metadata involved.
pub fn augmentation_contrastive_ranking(
    dataset: &Dataset,
    plm: &MiniPlm,
    substitution: bool,
    seed: u64,
) -> Vec<Vec<usize>> {
    let features = common::plm_features(dataset, plm);
    let mut rng = lrng::seeded(seed);
    // Corrupt every document serially first (the RNG stream must not depend
    // on the thread count), then encode the corrupted copies in parallel.
    let n = dataset.corpus.len();
    let mut aug = Matrix::zeros(n, plm.config.d_model);
    let vocab_len = dataset.corpus.vocab.len();
    let corrupted: Vec<Vec<structmine_text::vocab::TokenId>> = dataset
        .corpus
        .docs
        .iter()
        .map(|doc| {
            doc.tokens
                .iter()
                .filter_map(|&t| {
                    if rng.gen::<f32>() < 0.2 {
                        if substitution {
                            Some(rng.gen_range(
                                structmine_text::vocab::N_SPECIAL as u32..vocab_len as u32,
                            ))
                        } else {
                            None // dropout
                        }
                    } else {
                        Some(t)
                    }
                })
                .collect()
        })
        .collect();
    let aug_rows = par_map_chunks(ExecPolicy::global(), &corrupted, |_, toks| {
        plm.mean_embed(toks)
    });
    for (i, row) in aug_rows.iter().enumerate() {
        aug.row_mut(i).copy_from_slice(row);
    }
    // Stack [features; aug] and train the bi-encoder on (i, n+i) pairs.
    let stacked = Matrix::vstack(&[&features, &aug]);
    let pairs: Vec<(usize, usize)> = (0..n).map(|i| (i, n + i)).collect();
    let cfg = MiCoL {
        seed,
        ..Default::default()
    };
    let proj = train_bi_encoder(&stacked, &pairs, &cfg, stacked.cols());
    let labels = label_features(dataset, plm);
    rank_by_projection(&features, &labels, &proj)
}

/// Supervised MATCH-style rows: a projection trained with gold labels on a
/// fraction of the training split (softmax over label vectors), standing in
/// for MATCH at 10K/50K/100K/full supervision sizes.
pub fn supervised_match_ranking(
    dataset: &Dataset,
    plm: &MiniPlm,
    fraction: f32,
    seed: u64,
) -> Vec<Vec<usize>> {
    let features = common::plm_features(dataset, plm);
    let labels = label_features(dataset, plm);
    let d = features.cols();
    let n_train = ((dataset.train_idx.len() as f32) * fraction).ceil() as usize;
    let idx: Vec<usize> = dataset
        .train_idx
        .iter()
        .copied()
        .take(n_train.max(1))
        .collect();

    let mut store = ParamStore::new();
    let mut rng = lrng::seeded(seed);
    let mut init = Matrix::identity(d);
    for v in init.data_mut() {
        *v += lrng::gaussian(&mut rng) * 0.01;
    }
    let w = store.add("proj", init);
    let mut adam = Adam::new(&store, 1e-2, 5.0);
    let n_classes = labels.rows();
    let temp = (d as f32).sqrt();
    for _ in 0..300 {
        let batch: Vec<usize> = (0..16).map(|_| idx[rng.gen_range(0..idx.len())]).collect();
        let mut targets = Matrix::zeros(batch.len(), n_classes);
        for (r, &i) in batch.iter().enumerate() {
            let gold = &dataset.corpus.docs[i].labels;
            for &c in gold {
                targets.set(r, c, 1.0 / gold.len() as f32);
            }
        }
        let mut g = Graph::new();
        let mut binding = Binding::new();
        let wl = store.bind(&mut g, w, &mut binding);
        let f = g.leaf(features.select_rows(&batch));
        let l = g.leaf(labels.clone());
        let pf = g.matmul(f, wl);
        let pl = g.matmul(l, wl);
        let plt = g.transpose(pl);
        let logits = g.matmul(pf, plt);
        let scaled = g.scale(logits, 1.0 / temp);
        let loss = g.softmax_cross_entropy(scaled, &targets);
        g.backward(loss);
        adam.step(&mut store, &g, &binding);
    }
    let proj = store.value(w).clone();
    rank_by_projection(&features, &labels, &proj)
}

#[cfg(test)]
mod tests {
    use super::*;
    use structmine_eval::{ndcg_at_k, precision_at_k};
    use structmine_plm::cache::{pretrained, Tier};
    use structmine_text::synth::recipes;

    fn eval_p1(d: &Dataset, rankings: &[Vec<usize>]) -> f32 {
        let pred: Vec<Vec<usize>> = d.test_idx.iter().map(|&i| rankings[i].clone()).collect();
        precision_at_k(&pred, &d.test_gold_sets(), 1)
    }

    #[test]
    fn meta_paths_mine_topically_coherent_pairs() {
        let d = recipes::mag_cs(0.1, 90).unwrap();
        for path in [
            MetaPath::SharedReference,
            MetaPath::CoCited,
            MetaPath::SharedVenue,
        ] {
            let pairs = mine_pairs(&d, path, 2000, 1);
            assert!(
                pairs.len() > 20,
                "{path:?} mined too few pairs: {}",
                pairs.len()
            );
            let mut overlap = 0usize;
            for &(a, b) in &pairs {
                let la = &d.corpus.docs[a].labels;
                let lb = &d.corpus.docs[b].labels;
                if la.iter().any(|l| lb.contains(l)) {
                    overlap += 1;
                }
            }
            let frac = overlap as f32 / pairs.len() as f32;
            assert!(frac > 0.5, "{path:?} pairs not coherent: {frac}");
        }
    }

    #[test]
    fn bi_encoder_beats_or_matches_frozen_plm() {
        let d = recipes::mag_cs(0.1, 90).unwrap();
        let plm = pretrained(Tier::Test, 0);
        let frozen = eval_p1(&d, &plm_rep_ranking(&d, &plm));
        let micol = eval_p1(&d, &MiCoL::default().run(&d, &plm));
        assert!(micol > 0.2, "MICoL P@1 {micol}");
        assert!(
            micol >= frozen - 0.08,
            "MICoL {micol} badly trails frozen {frozen}"
        );
    }

    #[test]
    fn cross_encoder_produces_full_rankings() {
        let d = recipes::pubmed(0.06, 93).unwrap();
        let plm = pretrained(Tier::Test, 0);
        let rankings = MiCoL {
            encoder: Encoder::Cross,
            ..Default::default()
        }
        .run(&d, &plm);
        assert_eq!(rankings.len(), d.corpus.len());
        for r in &rankings {
            assert_eq!(r.len(), d.n_classes());
            let set: std::collections::HashSet<_> = r.iter().collect();
            assert_eq!(set.len(), d.n_classes(), "ranking has duplicates");
        }
    }

    #[test]
    fn supervised_match_improves_with_more_data() {
        let d = recipes::mag_cs(0.1, 90).unwrap();
        let plm = pretrained(Tier::Test, 0);
        let small = supervised_match_ranking(&d, &plm, 0.05, 7);
        let large = supervised_match_ranking(&d, &plm, 1.0, 7);
        let gold = d.test_gold_sets();
        let pred = |r: &[Vec<usize>]| -> Vec<Vec<usize>> {
            d.test_idx.iter().map(|&i| r[i].clone()).collect()
        };
        let n_small = ndcg_at_k(&pred(&small), &gold, 3);
        let n_large = ndcg_at_k(&pred(&large), &gold, 3);
        assert!(
            n_large >= n_small - 0.05,
            "more supervision should help: {n_small} -> {n_large}"
        );
    }

    #[test]
    fn doc2vec_baseline_runs() {
        let d = recipes::mag_cs(0.05, 95).unwrap();
        let rankings = doc2vec_ranking(&d, 3);
        assert_eq!(rankings.len(), d.corpus.len());
        let p1 = eval_p1(&d, &rankings);
        assert!((0.0..=1.0).contains(&p1));
    }
}
