//! TaxoClass — hierarchical multi-label text classification using only
//! class names (Shen et al., NAACL 2021).
//!
//! The taxonomy is a DAG with potentially thousands of classes, so users
//! cannot provide keywords per class; only names (and descriptions) exist.
//! TaxoClass:
//! 1. scores document–class relevance with an **NLI relevance model**
//!    (premise = document, hypothesis = the class name/description);
//! 2. shrinks the search space **top-down**: starting from the root's
//!    children, only the top-k relevant children are expanded per level;
//! 3. identifies per-document **core classes** — the most confidently
//!    relevant candidates;
//! 4. trains a multi-label classifier on core classes and **generalizes by
//!    self-training**, with ancestor closure enforced on the outputs.

use crate::common;
use crate::error::MethodError;
use structmine_linalg::exec::{par_map_chunks, ExecPolicy};
use structmine_linalg::{vector, Matrix};
use structmine_nn::graph::Graph;
use structmine_nn::params::{Adam, Binding, ParamStore};
use structmine_plm::MiniPlm;
use structmine_text::taxonomy::NodeId;
use structmine_text::vocab::TokenId;
use structmine_text::Dataset;

/// TaxoClass hyper-parameters.
#[derive(Clone, Copy, Debug)]
pub struct TaxoClass {
    /// Children expanded per level during top-down search.
    pub beam: usize,
    /// Relevance threshold for core classes.
    pub core_threshold: f32,
    /// Self-training iterations after the initial fit.
    pub self_train_iters: usize,
    /// Decision threshold on the sigmoid outputs.
    pub predict_threshold: f32,
    /// Training epochs per fitting round.
    pub epochs: usize,
    /// RNG seed.
    pub seed: u64,
    /// Execution policy for the relevance search and corpus encode (thread
    /// count; output is bitwise identical for any value).
    pub exec: ExecPolicy,
}

impl Default for TaxoClass {
    fn default() -> Self {
        TaxoClass {
            beam: 2,
            core_threshold: 0.55,
            self_train_iters: 1,
            predict_threshold: 0.5,
            epochs: 25,
            seed: 111,
            exec: ExecPolicy::default(),
        }
    }
}

impl structmine_store::StableHash for TaxoClass {
    /// Every hyper-parameter plus the policy's precision tier. The thread
    /// count is excluded (it cannot change outputs), but the precision
    /// tier swaps in approximate PLM inference kernels and *does* change
    /// bits — Exact and Fast runs must never share a cache entry.
    fn stable_hash(&self, h: &mut structmine_store::StableHasher) {
        self.beam.stable_hash(h);
        self.core_threshold.stable_hash(h);
        self.self_train_iters.stable_hash(h);
        self.predict_threshold.stable_hash(h);
        self.epochs.stable_hash(h);
        self.seed.stable_hash(h);
        self.exec.precision().stable_hash(h);
    }
}

/// TaxoClass outputs.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct TaxoClassOutput {
    /// Predicted label sets per document (ancestor-closed).
    pub label_sets: Vec<Vec<usize>>,
    /// Top-1 predicted class per document.
    pub top1: Vec<usize>,
    /// Core classes identified per document (diagnostic).
    pub core_classes: Vec<Vec<usize>>,
}

impl TaxoClass {
    /// Run TaxoClass on a DAG dataset, memoized through the global artifact
    /// store (keyed on dataset, PLM weights, and every hyper-parameter).
    /// Errors on a flat dataset.
    pub fn run(&self, dataset: &Dataset, plm: &MiniPlm) -> Result<TaxoClassOutput, MethodError> {
        use structmine_store::StableHash;
        let hier = common::hier_view(dataset, "TaxoClass")?;
        Ok(crate::pipeline::run_memoized(
            "taxoclass/predict",
            |h| {
                h.write_u128(dataset.fingerprint());
                h.write_u128(plm.fingerprint());
                self.stable_hash(h);
            },
            || self.run_validated(dataset, plm, &hier),
        ))
    }

    /// Run TaxoClass on a DAG dataset, bypassing the artifact store.
    pub fn run_uncached(
        &self,
        dataset: &Dataset,
        plm: &MiniPlm,
    ) -> Result<TaxoClassOutput, MethodError> {
        let hier = common::hier_view(dataset, "TaxoClass")?;
        Ok(self.run_validated(dataset, plm, &hier))
    }

    /// The algorithm proper, over a pre-validated hierarchy.
    fn run_validated(
        &self,
        dataset: &Dataset,
        plm: &MiniPlm,
        hier: &common::HierView<'_>,
    ) -> TaxoClassOutput {
        let _stage = structmine_store::context::stage_guard("taxoclass/run");
        let taxonomy = hier.taxonomy;
        let n_classes = dataset.n_classes();
        let hypotheses = class_hypotheses(dataset);

        let class_of_node = |node: NodeId| -> usize { hier.class_of(node) };

        // ------------------------------------------------------------------
        // 1+2. Top-down relevance search per document.
        // ------------------------------------------------------------------
        let n = dataset.corpus.len();
        let candidates = structmine_store::context::with_stage_label("taxoclass/search", || {
            top_down_search(dataset, plm, &hypotheses, self.beam, &self.exec, hier)
        });

        // ------------------------------------------------------------------
        // 3. Core classes.
        // ------------------------------------------------------------------
        let core_classes: Vec<Vec<usize>> = candidates
            .iter()
            .map(|kept| {
                let mut core: Vec<usize> = kept
                    .iter()
                    .filter(|&&(_, rel)| rel >= self.core_threshold)
                    .map(|&(c, _)| c)
                    .collect();
                if core.is_empty() {
                    // Guarantee at least the single most relevant candidate.
                    if let Some(&(c, _)) = kept
                        .iter()
                        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
                    {
                        core.push(c);
                    }
                }
                core
            })
            .collect();

        // ------------------------------------------------------------------
        // 4. Multi-label classifier + self-training with ancestor closure.
        // ------------------------------------------------------------------
        let _sub = structmine_store::context::stage_guard("taxoclass/self-train");
        let features = common::plm_features_with(dataset, plm, &self.exec);
        let mut clf = MultiLabelHead::new(features.cols(), n_classes, self.seed);

        // Initial targets: core classes (+ ancestors) positive, everything
        // outside the candidate pool negative, candidates-but-not-core
        // unknown (masked out with weight 0 via 0.5 targets).
        let mut targets = Matrix::filled(n, n_classes, 0.0);
        for (i, core) in core_classes.iter().enumerate() {
            let mut positives = std::collections::HashSet::new();
            for &c in core {
                positives.insert(c);
                for anc in taxonomy.ancestors(dataset.class_nodes[c]) {
                    positives.insert(class_of_node(anc));
                }
            }
            for c in positives {
                targets.set(i, c, 1.0);
            }
            // Non-core candidates: soft 0.5 (uncertain).
            for &(c, _) in &candidates[i] {
                if targets.get(i, c) == 0.0 {
                    targets.set(i, c, 0.5);
                }
            }
        }
        clf.fit(&features, &targets, self.epochs, self.seed);

        for it in 0..self.self_train_iters {
            let probs = clf.predict_proba(&features);
            // Confident predictions become the next round's targets.
            let mut next_targets = Matrix::zeros(n, n_classes);
            for i in 0..n {
                for c in 0..n_classes {
                    let p = probs.get(i, c);
                    next_targets.set(
                        i,
                        c,
                        if p > 0.8 {
                            1.0
                        } else if p < 0.2 {
                            0.0
                        } else {
                            p
                        },
                    );
                }
            }
            clf.fit(
                &features,
                &next_targets,
                self.epochs / 2,
                self.seed ^ (it as u64 + 1),
            );
        }

        // Predictions with ancestor closure.
        let probs = clf.predict_proba(&features);
        let mut label_sets = Vec::with_capacity(n);
        let mut top1 = Vec::with_capacity(n);
        for i in 0..n {
            let row = probs.row(i);
            let mut set: Vec<usize> = (0..n_classes)
                .filter(|&c| row[c] >= self.predict_threshold)
                .collect();
            let best = vector::argmax(row).unwrap_or(0);
            if !set.contains(&best) {
                set.push(best);
            }
            // Ancestor closure.
            let mut closed: std::collections::HashSet<usize> = set.iter().copied().collect();
            for &c in &set {
                for anc in taxonomy.ancestors(dataset.class_nodes[c]) {
                    closed.insert(class_of_node(anc));
                }
            }
            let mut set: Vec<usize> = closed.into_iter().collect();
            set.sort_unstable();
            label_sets.push(set);
            top1.push(best);
        }

        TaxoClassOutput {
            label_sets,
            top1,
            core_classes,
        }
    }
}

/// Top-down beam search per document: expand only the `beam` most relevant
/// children per taxonomy level, scored by NLI entailment between document
/// and class hypothesis. Documents are independent, so they are shared
/// across the policy's threads; results stay in document order.
fn top_down_search(
    dataset: &Dataset,
    plm: &MiniPlm,
    hypotheses: &[Vec<TokenId>],
    beam: usize,
    policy: &ExecPolicy,
    hier: &common::HierView<'_>,
) -> Vec<Vec<(usize, f32)>> {
    let taxonomy = hier.taxonomy;
    let class_of_node = |node: NodeId| -> usize { hier.class_of(node) };
    par_map_chunks(policy, &dataset.corpus.docs, |_, doc| {
        let mut frontier = vec![taxonomy.root()];
        let mut kept: Vec<(usize, f32)> = Vec::new();
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for node in frontier.drain(..) {
                let children = taxonomy.children(node);
                if children.is_empty() {
                    continue;
                }
                let mut scored: Vec<(NodeId, f32)> = children
                    .iter()
                    .map(|&ch| {
                        let c = class_of_node(ch);
                        (ch, plm.nli_entail_prob(&doc.tokens, &hypotheses[c]))
                    })
                    .collect();
                scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
                for &(ch, rel) in scored.iter().take(beam) {
                    let c = class_of_node(ch);
                    if !kept.iter().any(|&(k, _)| k == c) {
                        kept.push((c, rel));
                        next.push(ch);
                    }
                }
            }
            frontier = next;
        }
        kept
    })
}

/// Hypothesis token sequence per class: name plus description words.
pub fn class_hypotheses(dataset: &Dataset) -> Vec<Vec<TokenId>> {
    let names = dataset.label_name_tokens();
    let descs = crate::baselines::label_description_tokens(dataset);
    names
        .into_iter()
        .zip(descs)
        .map(|(mut n, d)| {
            n.extend(d.into_iter().take(8));
            n.dedup();
            n
        })
        .collect()
}

/// A sigmoid multi-label head over fixed features (shared by TaxoClass and
/// its semi-supervised baselines).
pub struct MultiLabelHead {
    store: ParamStore,
    w: structmine_nn::params::ParamId,
    b: structmine_nn::params::ParamId,
    d_in: usize,
    n_classes: usize,
}

impl MultiLabelHead {
    /// Create a linear sigmoid head.
    pub fn new(d_in: usize, n_classes: usize, seed: u64) -> Self {
        let mut store = ParamStore::new();
        let mut rng = structmine_linalg::rng::seeded(seed);
        let w = store.xavier("w", d_in, n_classes, &mut rng);
        let b = store.zeros("b", 1, n_classes);
        MultiLabelHead {
            store,
            w,
            b,
            d_in,
            n_classes,
        }
    }

    /// Fit against element-wise BCE targets in `[0, 1]`.
    pub fn fit(&mut self, x: &Matrix, targets: &Matrix, epochs: usize, seed: u64) {
        assert_eq!(x.cols(), self.d_in);
        assert_eq!(targets.cols(), self.n_classes);
        let mut adam = Adam::new(&self.store, 5e-2, 5.0);
        let mut order: Vec<usize> = (0..x.rows()).collect();
        let mut rng = structmine_linalg::rng::seeded(seed);
        use rand::seq::SliceRandom;
        for _ in 0..epochs {
            order.shuffle(&mut rng);
            for chunk in order.chunks(64) {
                let xb = x.select_rows(chunk);
                let tb = targets.select_rows(chunk);
                let mut g = Graph::new();
                let mut binding = Binding::new();
                let xl = g.leaf(xb);
                let w = self.store.bind(&mut g, self.w, &mut binding);
                let b = self.store.bind(&mut g, self.b, &mut binding);
                let xw = g.matmul(xl, w);
                let logits = g.add_row_broadcast(xw, b);
                let loss = g.sigmoid_bce(logits, &tb);
                g.backward(loss);
                adam.step(&mut self.store, &g, &binding);
            }
        }
    }

    /// Per-class sigmoid probabilities.
    pub fn predict_proba(&self, x: &Matrix) -> Matrix {
        let mut g = Graph::new();
        let mut binding = Binding::new();
        let xl = g.leaf(x.clone());
        let w = self.store.bind(&mut g, self.w, &mut binding);
        let b = self.store.bind(&mut g, self.b, &mut binding);
        let xw = g.matmul(xl, w);
        let logits = g.add_row_broadcast(xw, b);
        let mut out = g.value(logits).clone();
        for v in out.data_mut() {
            *v = 1.0 / (1.0 + (-*v).exp());
        }
        out
    }
}

/// Hier-0Shot-TC baseline: top-down NLI relevance without core-class
/// training — the candidates themselves (ancestor-closed, thresholded) are
/// the prediction.
pub fn hier_zero_shot(
    dataset: &Dataset,
    plm: &MiniPlm,
    beam: usize,
) -> Result<TaxoClassOutput, MethodError> {
    let hier = common::hier_view(dataset, "Hier-0Shot-TC")?;
    let method = TaxoClass {
        beam,
        self_train_iters: 0,
        ..Default::default()
    };
    let hypotheses = class_hypotheses(dataset);
    let candidates = top_down_search(dataset, plm, &hypotheses, beam, &method.exec, &hier);
    let mut label_sets = Vec::new();
    let mut top1 = Vec::new();
    for kept in &candidates {
        let mut set: Vec<usize> = kept
            .iter()
            .filter(|&&(_, rel)| rel >= method.core_threshold)
            .map(|&(c, _)| c)
            .collect();
        let best = kept
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|&(c, _)| c)
            .unwrap_or(0);
        if !set.contains(&best) {
            set.push(best);
        }
        set.sort_unstable();
        label_sets.push(set.clone());
        top1.push(best);
    }
    Ok(TaxoClassOutput {
        label_sets,
        top1,
        core_classes: Vec::new(),
    })
}

/// Semi-supervised baseline: the multi-label head trained on a fraction of
/// the gold-labeled training split (SS-PCEM / Semi-BERT rows).
pub fn semi_supervised(
    dataset: &Dataset,
    plm: &MiniPlm,
    fraction: f32,
    seed: u64,
) -> TaxoClassOutput {
    let n_classes = dataset.n_classes();
    let features = common::plm_features(dataset, plm);
    let n_train = ((dataset.train_idx.len() as f32) * fraction).ceil() as usize;
    let idx: Vec<usize> = dataset.train_idx.iter().copied().take(n_train).collect();
    let mut targets = Matrix::zeros(idx.len(), n_classes);
    for (r, &i) in idx.iter().enumerate() {
        for &c in &dataset.corpus.docs[i].labels {
            targets.set(r, c, 1.0);
        }
    }
    let x = features.select_rows(&idx);
    let mut head = MultiLabelHead::new(features.cols(), n_classes, seed);
    head.fit(&x, &targets, 30, seed);
    let probs = head.predict_proba(&features);
    let mut label_sets = Vec::new();
    let mut top1 = Vec::new();
    for i in 0..probs.rows() {
        let row = probs.row(i);
        let mut set: Vec<usize> = (0..n_classes).filter(|&c| row[c] >= 0.5).collect();
        let best = vector::argmax(row).unwrap_or(0);
        if !set.contains(&best) {
            set.push(best);
        }
        set.sort_unstable();
        label_sets.push(set);
        top1.push(best);
    }
    TaxoClassOutput {
        label_sets,
        top1,
        core_classes: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use structmine_eval::{example_f1, precision_at_1_sets};
    use structmine_plm::cache::{pretrained, Tier};
    use structmine_text::synth::recipes;

    fn eval(d: &Dataset, out: &TaxoClassOutput) -> (f32, f32) {
        let pred: Vec<Vec<usize>> = d
            .test_idx
            .iter()
            .map(|&i| out.label_sets[i].clone())
            .collect();
        let top1: Vec<usize> = d.test_idx.iter().map(|&i| out.top1[i]).collect();
        let gold = d.test_gold_sets();
        (example_f1(&pred, &gold), precision_at_1_sets(&top1, &gold))
    }

    #[test]
    fn taxoclass_beats_chance_on_dag() {
        let d = recipes::amazon_taxonomy(0.08, 71).unwrap();
        let plm = pretrained(Tier::Test, 0);
        let out = TaxoClass::default().run(&d, &plm).unwrap();
        let (f1, p1) = eval(&d, &out);
        assert!(f1 > 0.25, "Example-F1 {f1}");
        assert!(p1 > 0.3, "P@1 {p1}");
    }

    #[test]
    fn predictions_are_ancestor_closed() {
        let d = recipes::dbpedia_taxonomy(0.06, 72).unwrap();
        let plm = pretrained(Tier::Test, 0);
        let out = TaxoClass::default().run(&d, &plm).unwrap();
        let tax = d.taxonomy.as_ref().unwrap();
        for set in &out.label_sets {
            for &c in set {
                for anc in tax.ancestors(d.class_nodes[c]) {
                    let ac = d.class_nodes.iter().position(|&n| n == anc).unwrap();
                    assert!(set.contains(&ac), "missing ancestor {ac} in {set:?}");
                }
            }
        }
    }

    #[test]
    fn hier_zero_shot_is_weaker_or_equal() {
        let d = recipes::amazon_taxonomy(0.06, 73).unwrap();
        let plm = pretrained(Tier::Test, 0);
        let full = TaxoClass::default().run(&d, &plm).unwrap();
        let zs = hier_zero_shot(&d, &plm, 2).unwrap();
        let (f1_full, _) = eval(&d, &full);
        let (f1_zs, _) = eval(&d, &zs);
        assert!(
            f1_full >= f1_zs - 0.08,
            "TaxoClass {f1_full} should not badly trail zero-shot {f1_zs}"
        );
    }

    #[test]
    fn semi_supervised_baseline_runs() {
        let d = recipes::amazon_taxonomy(0.05, 74).unwrap();
        let plm = pretrained(Tier::Test, 0);
        let out = semi_supervised(&d, &plm, 0.3, 7);
        let (f1, p1) = eval(&d, &out);
        assert!(f1 > 0.2 && p1 > 0.2, "semi-supervised f1 {f1} p1 {p1}");
    }
}
