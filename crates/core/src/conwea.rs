//! ConWea — contextualized weak supervision for text classification
//! (Mekala & Shang, ACL 2020).
//!
//! User-provided seed words may be ambiguous ("penalty" appears in both
//! soccer and law documents). ConWea:
//! 1. collects the contextualized representations of every seed-word
//!    occurrence, clusters them (k = 2) and splits a word into senses when
//!    the clusters are well separated;
//! 2. rewrites the corpus so each occurrence carries its sense
//!    (`penalty#0` / `penalty#1`) and resolves which sense each class's
//!    seed refers to by similarity to the class's unambiguous seeds;
//! 3. pseudo-labels documents by similarity to the sense-aware seed sets,
//!    expands the seeds by comparative ranking of class-indicative words,
//!    and iterates with a document classifier.
//!
//! Ablation switches reproduce the paper's ConWea-NoCon, ConWea-NoExpan
//! and ConWea-WSD rows (the WSD variant replaces contextualized vectors
//! with static window averages).

use structmine_cluster::quality::silhouette;
use structmine_linalg::exec::{par_map_chunks, ExecPolicy};
use structmine_linalg::{vector, Matrix};
use structmine_nn::classifiers::{MlpClassifier, TrainConfig};
use structmine_plm::MiniPlm;
use structmine_text::tfidf::TfIdf;
use structmine_text::vocab::{TokenId, Vocab};
use structmine_text::{Corpus, Dataset, Supervision};

/// ConWea hyper-parameters and ablation switches.
#[derive(Clone, Copy, Debug)]
pub struct ConWea {
    /// Disambiguate seed senses with contextualized clustering (NoCon
    /// ablation when false).
    pub contextualize: bool,
    /// Expand seed sets by comparative ranking (NoExpan ablation when
    /// false).
    pub expand: bool,
    /// Replace contextualized vectors with static window averages (the WSD
    /// ablation row).
    pub wsd_fallback: bool,
    /// Seed-expansion words added per class and iteration.
    pub expand_per_class: usize,
    /// Iterations of the expand/relabel loop.
    pub iterations: usize,
    /// Minimum silhouette for accepting a two-sense split.
    pub sense_threshold: f32,
    /// Minimum occurrences before a split is considered.
    pub min_occurrences: usize,
    /// RNG seed.
    pub seed: u64,
    /// Execution policy for the occurrence encodes (thread count; output is
    /// bitwise identical for any value).
    pub exec: ExecPolicy,
}

impl Default for ConWea {
    fn default() -> Self {
        ConWea {
            contextualize: true,
            expand: true,
            wsd_fallback: false,
            expand_per_class: 8,
            iterations: 2,
            sense_threshold: 0.15,
            min_occurrences: 10,
            seed: 61,
            exec: ExecPolicy::default(),
        }
    }
}

impl structmine_store::StableHash for ConWea {
    /// Every hyper-parameter plus the policy's precision tier. The thread
    /// count is excluded (it cannot change outputs), but the precision
    /// tier swaps in approximate PLM inference kernels and *does* change
    /// bits — Exact and Fast runs must never share a cache entry.
    fn stable_hash(&self, h: &mut structmine_store::StableHasher) {
        self.contextualize.stable_hash(h);
        self.expand.stable_hash(h);
        self.wsd_fallback.stable_hash(h);
        self.expand_per_class.stable_hash(h);
        self.iterations.stable_hash(h);
        self.sense_threshold.stable_hash(h);
        self.min_occurrences.stable_hash(h);
        self.seed.stable_hash(h);
        self.exec.precision().stable_hash(h);
    }
}

/// ConWea outputs.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct ConWeaOutput {
    /// Final per-document predictions.
    pub predictions: Vec<usize>,
    /// Seed words that were split into senses (surface forms).
    pub split_words: Vec<String>,
    /// The final (expanded, sense-resolved) seed strings per class.
    pub final_seeds: Vec<Vec<String>>,
}

impl ConWea {
    /// Run ConWea with keyword supervision, memoized through the global
    /// artifact store (keyed on dataset, supervision, PLM weights, and
    /// every hyper-parameter).
    pub fn run(&self, dataset: &Dataset, sup: &Supervision, plm: &MiniPlm) -> ConWeaOutput {
        use structmine_store::StableHash;
        crate::pipeline::run_memoized(
            "conwea/predict",
            |h| {
                h.write_u128(dataset.fingerprint());
                sup.stable_hash(h);
                h.write_u128(plm.fingerprint());
                self.stable_hash(h);
            },
            || self.run_uncached(dataset, sup, plm),
        )
    }

    /// Run ConWea with keyword supervision, bypassing the artifact store.
    pub fn run_uncached(
        &self,
        dataset: &Dataset,
        sup: &Supervision,
        plm: &MiniPlm,
    ) -> ConWeaOutput {
        let _stage = structmine_store::context::stage_guard("conwea/run");
        let n_classes = dataset.n_classes();
        let seeds = crate::common::seed_tokens(dataset, sup);

        // ------------------------------------------------------------------
        // 1+2. Sense disambiguation and corpus contextualization.
        // ------------------------------------------------------------------
        let mut corpus = dataset.corpus.clone();
        let mut class_seeds: Vec<Vec<TokenId>> = seeds.clone();
        let mut split_words = Vec::new();

        if self.contextualize {
            let _sub = structmine_store::context::stage_guard("conwea/contextualize");
            let distinct: Vec<TokenId> = {
                let mut v: Vec<TokenId> = seeds.iter().flatten().copied().collect();
                v.sort_unstable();
                v.dedup();
                v
            };
            let occ = collect_occurrence_reps(
                plm,
                &dataset.corpus,
                &distinct,
                self.wsd_fallback,
                &self.exec,
            );

            // Cluster each seed word's occurrences into candidate senses.
            let mut senses: std::collections::HashMap<TokenId, SenseSplit> =
                std::collections::HashMap::new();
            for &t in &distinct {
                let Some(reps) = occ.get(&t) else { continue };
                if reps.len() < self.min_occurrences {
                    continue;
                }
                let data = rows_to_matrix(reps.iter().map(|o| o.rep.as_slice()));
                let (result, sil) = sense_cluster(&data, self.seed);
                if sil > self.sense_threshold {
                    split_words.push(dataset.corpus.vocab.word(t).to_string());
                    senses.insert(
                        t,
                        SenseSplit {
                            centroids: result.centroids,
                            assignments: reps
                                .iter()
                                .zip(&result.assignments)
                                .map(|(o, &s)| ((o.doc, o.pos), s))
                                .collect(),
                        },
                    );
                }
            }

            // Class prototypes from unambiguous seed occurrences.
            let mut prototypes: Vec<Vec<f32>> = Vec::with_capacity(n_classes);
            for class_seed in &seeds {
                let mut acc = vec![0.0f32; plm.config.d_model];
                let mut count = 0usize;
                for &t in class_seed {
                    if senses.contains_key(&t) {
                        continue;
                    }
                    if let Some(reps) = occ.get(&t) {
                        for o in reps {
                            vector::axpy(&mut acc, 1.0, &o.rep);
                            count += 1;
                        }
                    }
                }
                if count == 0 {
                    // All of this class's seeds are ambiguous: fall back to
                    // the mean over every occurrence of every seed.
                    for &t in class_seed {
                        if let Some(reps) = occ.get(&t) {
                            for o in reps {
                                vector::axpy(&mut acc, 1.0, &o.rep);
                                count += 1;
                            }
                        }
                    }
                }
                if count > 0 {
                    vector::scale(&mut acc, 1.0 / count as f32);
                }
                prototypes.push(acc);
            }

            // Rewrite the corpus with sense tokens and resolve class seeds.
            let mut sense_tokens: std::collections::HashMap<(TokenId, usize), TokenId> =
                std::collections::HashMap::new();
            // Intern in sorted token order: `intern` assigns fresh vocab
            // ids sequentially, so hash iteration order here would leak
            // per-process randomness into every downstream embedding.
            let mut split_tokens: Vec<TokenId> = senses.keys().copied().collect();
            split_tokens.sort_unstable();
            for &t in &split_tokens {
                let split = &senses[&t];
                let word = dataset.corpus.vocab.word(t).to_string();
                for s in 0..split.centroids.rows() {
                    let id = corpus.vocab.intern(&format!("{word}#{s}"));
                    sense_tokens.insert((t, s), id);
                }
            }
            for (d, doc) in corpus.docs.iter_mut().enumerate() {
                for (p, tok) in doc.tokens.iter_mut().enumerate() {
                    if let Some(split) = senses.get(tok) {
                        let sense = split.assignments.get(&(d, p)).copied().unwrap_or_else(|| {
                            // Occurrence beyond the clustered cap: nearest centroid
                            // of the *static* embedding as a cheap fallback.
                            nearest_centroid(plm.token_embedding(*tok), &split.centroids)
                        });
                        *tok = sense_tokens[&(*tok, sense)];
                    }
                }
            }
            class_seeds = seeds
                .iter()
                .enumerate()
                .map(|(c, class_seed)| {
                    class_seed
                        .iter()
                        .map(|t| match senses.get(t) {
                            None => *t,
                            Some(split) => {
                                let s = nearest_centroid(&prototypes[c], &split.centroids);
                                sense_tokens[&(*t, s)]
                            }
                        })
                        .collect()
                })
                .collect();
        }

        // ------------------------------------------------------------------
        // 3. Iterative pseudo-labeling, expansion and classification.
        // ------------------------------------------------------------------
        let _sub = structmine_store::context::stage_guard("conwea/pseudo-label");
        let tfidf = TfIdf::fit(&corpus);
        let features = dense_tfidf(&corpus, &tfidf);
        let mut assignments = assign_by_seed_similarity(&corpus, &tfidf, &class_seeds);
        let mut expanded = class_seeds.clone();

        for it in 0..self.iterations {
            if self.expand {
                expanded = expand_seeds(&corpus, &assignments, &expanded, self.expand_per_class);
                assignments = assign_by_seed_similarity(&corpus, &tfidf, &expanded);
            }
            // Train the document classifier on current pseudo labels.
            let mut clf = MlpClassifier::new(features.cols(), 0, n_classes, self.seed ^ it as u64);
            let targets = structmine_nn::classifiers::one_hot(&assignments, n_classes, 0.1);
            clf.fit(
                &features,
                &targets,
                &TrainConfig {
                    epochs: 12,
                    lr: 5e-2,
                    seed: self.seed,
                    ..Default::default()
                },
            );
            assignments = clf.predict(&features);
        }

        let final_seeds = expanded
            .iter()
            .map(|class_seed| {
                class_seed
                    .iter()
                    .map(|&t| corpus.vocab.word(t).to_string())
                    .collect()
            })
            .collect();
        ConWeaOutput {
            predictions: assignments,
            split_words,
            final_seeds,
        }
    }
}

struct SenseSplit {
    centroids: Matrix,
    assignments: std::collections::HashMap<(usize, usize), usize>,
}

struct OccRep {
    doc: usize,
    pos: usize,
    rep: Vec<f32>,
}

/// Collect per-occurrence vectors for the given tokens. Contextual mode
/// delegates to the batched multi-token occurrence encoder (each containing
/// document is encoded once, documents shared across the policy's threads);
/// WSD-fallback mode averages static embeddings over a ±5 window.
fn collect_occurrence_reps(
    plm: &MiniPlm,
    corpus: &Corpus,
    tokens: &[TokenId],
    static_window: bool,
    policy: &ExecPolicy,
) -> std::collections::HashMap<TokenId, Vec<OccRep>> {
    if !static_window {
        return structmine_plm::repr::occurrence_reps_multi(plm, corpus, tokens, policy)
            .into_iter()
            .map(|(t, occs)| {
                let reps = occs
                    .into_iter()
                    .map(|o| OccRep {
                        doc: o.doc,
                        pos: o.pos,
                        rep: o.vector,
                    })
                    .collect();
                (t, reps)
            })
            .collect();
    }
    let set: std::collections::HashSet<TokenId> = tokens.iter().copied().collect();
    let budget = plm.config.max_len - 2;
    // Per-document extraction is independent; merging in document order
    // reproduces the serial scan exactly.
    let per_doc: Vec<Vec<(TokenId, OccRep)>> = par_map_chunks(policy, &corpus.docs, |d, doc| {
        if !doc.tokens.iter().any(|t| set.contains(t)) {
            return Vec::new();
        }
        let mut found = Vec::new();
        for (p, &t) in doc.tokens.iter().take(budget).enumerate() {
            if !set.contains(&t) {
                continue;
            }
            let lo = p.saturating_sub(5);
            let hi = (p + 6).min(doc.tokens.len());
            let window: Vec<&[f32]> = (lo..hi)
                .filter(|&q| q != p)
                .map(|q| plm.token_embedding(doc.tokens[q]))
                .collect();
            let rep = vector::mean_of(&window, plm.config.d_model);
            found.push((
                t,
                OccRep {
                    doc: d,
                    pos: p,
                    rep,
                },
            ));
        }
        found
    });
    let mut out: std::collections::HashMap<TokenId, Vec<OccRep>> = std::collections::HashMap::new();
    for found in per_doc {
        for (t, o) in found {
            out.entry(t).or_default().push(o);
        }
    }
    out
}

/// Cluster occurrence vectors into two candidate senses: mean-center (the
/// hidden states share a large common component that would otherwise
/// dominate), normalize, and run spherical k-means. Returns the clustering
/// and its silhouette.
pub fn sense_cluster(data: &Matrix, seed: u64) -> (structmine_cluster::KMeansResult, f32) {
    let mut centered = data.clone();
    let mean = centered.col_mean();
    for r in 0..centered.rows() {
        for (v, m) in centered.row_mut(r).iter_mut().zip(&mean) {
            *v -= m;
        }
    }
    centered.normalize_rows();
    let result = structmine_cluster::spherical_kmeans(&centered, 2, seed, 50, None);
    let sil = silhouette(&centered, &result.assignments);
    (result, sil)
}

fn rows_to_matrix<'a>(rows: impl Iterator<Item = &'a [f32]>) -> Matrix {
    let collected: Vec<&[f32]> = rows.collect();
    Matrix::from_rows(&collected)
}

fn nearest_centroid(v: &[f32], centroids: &Matrix) -> usize {
    let scores: Vec<f32> = (0..centroids.rows())
        .map(|c| vector::cosine(v, centroids.row(c)))
        .collect();
    vector::argmax(&scores).unwrap_or(0)
}

/// Dense TF-IDF feature matrix (`n x vocab`).
pub(crate) fn dense_tfidf(corpus: &Corpus, tfidf: &TfIdf) -> Matrix {
    let mut m = Matrix::zeros(corpus.len(), corpus.vocab.len());
    for (i, doc) in corpus.docs.iter().enumerate() {
        for (t, w) in tfidf.vectorize(&doc.tokens) {
            m.set(i, t as usize, w);
        }
    }
    m
}

/// Assign every document to the class with the highest TF-IDF cosine to its
/// seed query.
fn assign_by_seed_similarity(corpus: &Corpus, tfidf: &TfIdf, seeds: &[Vec<TokenId>]) -> Vec<usize> {
    let queries: Vec<_> = seeds.iter().map(|s| tfidf.vectorize(s)).collect();
    corpus
        .docs
        .iter()
        .map(|doc| {
            let dv = tfidf.vectorize(&doc.tokens);
            let scores: Vec<f32> = queries
                .iter()
                .map(|q| structmine_text::tfidf::sparse_cosine(&dv, q))
                .collect();
            vector::argmax(&scores).unwrap_or(0)
        })
        .collect()
}

/// Comparative ranking: words that are frequent in a class's documents but
/// rare elsewhere become new seeds.
fn expand_seeds(
    corpus: &Corpus,
    assignments: &[usize],
    current: &[Vec<TokenId>],
    per_class: usize,
) -> Vec<Vec<TokenId>> {
    let n_classes = current.len();
    let vocab_len = corpus.vocab.len();
    let mut class_counts = vec![vec![0u32; vocab_len]; n_classes];
    let mut total_counts = vec![0u32; vocab_len];
    for (doc, &c) in corpus.docs.iter().zip(assignments) {
        for &t in &doc.tokens {
            class_counts[c][t as usize] += 1;
            total_counts[t as usize] += 1;
        }
    }
    current
        .iter()
        .enumerate()
        .map(|(c, seed)| {
            let mut scored: Vec<(TokenId, f32)> = (0..vocab_len as u32)
                .filter(|&t| {
                    !Vocab::is_special(t) && total_counts[t as usize] >= 5 && !seed.contains(&t)
                })
                .map(|t| {
                    let fc = class_counts[c][t as usize] as f32;
                    let ft = total_counts[t as usize] as f32;
                    // Precision-weighted frequency (label-indicative score).
                    (t, (fc / ft).powi(2) * fc.ln_1p())
                })
                .collect();
            scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
            let mut out = seed.clone();
            out.extend(scored.into_iter().take(per_class).map(|(t, _)| t));
            out
        })
        .collect()
}

/// Make polysemous seed supervision for ConWea experiments: each class's
/// standard keywords, plus the planted polysemes where applicable.
pub fn ambiguous_keywords(dataset: &Dataset) -> Supervision {
    // The recipes' first-3-lexicon-words keywords already include the
    // planted polysemes (e.g. soccer: [soccer, goal, penalty], law: [law,
    // court, judge]) — pass them through; this helper exists so benches are
    // explicit about using ambiguity-bearing seeds.
    dataset.supervision_keywords()
}

#[cfg(test)]
mod tests {
    use super::*;
    use structmine_eval::accuracy;
    use structmine_plm::cache::{pretrained, Tier};
    use structmine_text::synth::recipes;

    fn nyt_with_polysemes() -> Dataset {
        // nyt-fine at tiny scale includes soccer & law classes whose
        // keywords share "penalty"/"court" ambiguity partners.
        recipes::news20_fine(0.12, 21).unwrap()
    }

    #[test]
    fn conwea_beats_its_no_contextualization_ablation_or_ties() {
        let d = nyt_with_polysemes();
        let plm = pretrained(Tier::Test, 0);
        let sup = ambiguous_keywords(&d);
        let full = ConWea {
            iterations: 1,
            ..Default::default()
        }
        .run(&d, &sup, &plm);
        let nocon = ConWea {
            contextualize: false,
            iterations: 1,
            ..Default::default()
        }
        .run(&d, &sup, &plm);
        let gold = d.test_gold();
        let acc_full = accuracy(&crate::common::test_slice(&d, &full.predictions), &gold);
        let acc_nocon = accuracy(&crate::common::test_slice(&d, &nocon.predictions), &gold);
        assert!(acc_full > 0.5, "ConWea acc {acc_full}");
        assert!(
            acc_full + 0.05 >= acc_nocon,
            "contextualization hurt badly: {acc_full} vs {acc_nocon}"
        );
    }

    #[test]
    fn expansion_grows_seed_sets() {
        let d = recipes::agnews(0.08, 22).unwrap();
        let plm = pretrained(Tier::Test, 0);
        let out = ConWea {
            iterations: 1,
            ..Default::default()
        }
        .run(&d, &d.supervision_keywords(), &plm);
        for (c, seeds) in out.final_seeds.iter().enumerate() {
            assert!(
                seeds.len() > d.labels.keywords[c].len(),
                "class {c} seeds did not grow: {seeds:?}"
            );
        }
    }

    #[test]
    fn dense_tfidf_matches_sparse() {
        let d = recipes::yelp(0.05, 23).unwrap();
        let tfidf = TfIdf::fit(&d.corpus);
        let dense = dense_tfidf(&d.corpus, &tfidf);
        let sparse = tfidf.vectorize(&d.corpus.docs[0].tokens);
        for (t, w) in sparse {
            assert!((dense.get(0, t as usize) - w).abs() < 1e-6);
        }
    }

    #[test]
    fn sense_split_separates_planted_polyseme() {
        // Build a corpus where "penalty" appears in soccer and law contexts;
        // the contextualized clustering should split it.
        let d = recipes::news20_fine(0.15, 24).unwrap();
        let plm = pretrained(Tier::Test, 0);
        let penalty = d.corpus.vocab.id("penalty").unwrap();
        let occ =
            collect_occurrence_reps(&plm, &d.corpus, &[penalty], false, &ExecPolicy::serial());
        let reps = occ.get(&penalty).expect("penalty must occur");
        assert!(reps.len() >= 10, "too few occurrences: {}", reps.len());
        let data = rows_to_matrix(reps.iter().map(|o| o.rep.as_slice()));
        let (result, _sil) = sense_cluster(&data, 1);
        // The two clusters should correlate with soccer-vs-law documents.
        let soccer_class = d.labels.names.iter().position(|n| n == "soccer").unwrap();
        let law_class = d.labels.names.iter().position(|n| n == "law").unwrap();
        let mut agree = 0usize;
        let mut total = 0usize;
        for (o, &cl) in reps.iter().zip(&result.assignments) {
            let gold = d.corpus.docs[o.doc].labels[0];
            if gold == soccer_class || gold == law_class {
                total += 1;
                agree += usize::from((gold == soccer_class) == (cl == 0));
            }
        }
        if total >= 10 {
            let rate = agree.max(total - agree) as f32 / total as f32;
            assert!(rate > 0.7, "sense clusters do not track classes: {rate}");
        }
    }
}
