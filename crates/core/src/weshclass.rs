//! WeSHClass — weakly-supervised hierarchical text classification
//! (Meng, Shen, Zhang & Han, AAAI 2019).
//!
//! The label hierarchy is a tree; every document belongs to one root-to-leaf
//! path. WeSHClass trains a **local classifier per internal node** over its
//! children (each a WeSTClass-style flat classifier pre-trained on vMF
//! pseudo documents) and composes them into a **global classifier per
//! level**: `P(node) = Π P(child | parent)` along the path, refined by
//! level-wise self-training.
//!
//! Ablation switches reproduce the paper's No-global, No-vMF and
//! No-self-train rows.

use crate::error::MethodError;
use crate::westclass::WeSTClass;
use rand::Rng as _;
use structmine_embed::WordVectors;
use structmine_linalg::exec::{par_map_chunks, ExecPolicy};
use structmine_linalg::{rng as lrng, vector, Matrix};
use structmine_nn::classifiers::{MlpClassifier, TrainConfig};
use structmine_nn::selftrain;
use structmine_text::taxonomy::NodeId;
use structmine_text::tfidf::TfIdf;
use structmine_text::vocab::TokenId;
use structmine_text::{Dataset, Supervision};

/// WeSHClass hyper-parameters and ablation switches.
#[derive(Clone, Copy, Debug)]
pub struct WeSHClass {
    /// Pseudo documents per child class at each local classifier.
    pub pseudo_per_class: usize,
    /// Use vMF-sampled pseudo documents (No-vMF ablation draws words
    /// directly from the keyword set when false).
    pub use_vmf: bool,
    /// Compose local classifiers into path products (No-global ablation
    /// uses greedy top-down argmax when false).
    pub use_global: bool,
    /// Run level-wise self-training (No-self-train ablation when false).
    pub self_train: bool,
    /// Classifier hidden width.
    pub hidden: usize,
    /// RNG seed.
    pub seed: u64,
    /// Execution policy for the per-document path search (thread count;
    /// output is bitwise identical for any value).
    pub exec: ExecPolicy,
}

impl Default for WeSHClass {
    fn default() -> Self {
        WeSHClass {
            pseudo_per_class: 60,
            use_vmf: true,
            use_global: true,
            self_train: true,
            hidden: 32,
            seed: 101,
            exec: ExecPolicy::default(),
        }
    }
}

impl structmine_store::StableHash for WeSHClass {
    /// Every hyper-parameter except `exec`: this method runs no PLM
    /// inference, so neither the thread count nor the precision tier can
    /// change its outputs and cached runs stay valid across both.
    fn stable_hash(&self, h: &mut structmine_store::StableHasher) {
        self.pseudo_per_class.stable_hash(h);
        self.use_vmf.stable_hash(h);
        self.use_global.stable_hash(h);
        self.self_train.stable_hash(h);
        self.hidden.stable_hash(h);
        self.seed.stable_hash(h);
    }
}

/// WeSHClass outputs.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct WeSHClassOutput {
    /// Per-document predicted class sets (all nodes on the predicted path,
    /// as class indices into `dataset.labels`).
    pub path_predictions: Vec<Vec<usize>>,
}

impl WeSHClass {
    /// Validate the dataset for WeSHClass: a tree taxonomy whose every
    /// non-root node maps to a class.
    fn validate<'a>(dataset: &'a Dataset) -> Result<crate::common::HierView<'a>, MethodError> {
        let hier = crate::common::hier_view(dataset, "WeSHClass")?;
        if !hier.taxonomy.is_tree() {
            return Err(MethodError::NotATree {
                method: "WeSHClass",
            });
        }
        Ok(hier)
    }

    /// Run WeSHClass on a tree dataset, memoized through the global
    /// artifact store (keyed on dataset, supervision, word vectors, and
    /// every hyper-parameter). Errors on a flat dataset or a DAG taxonomy.
    pub fn run(
        &self,
        dataset: &Dataset,
        sup: &Supervision,
        wv: &WordVectors,
    ) -> Result<WeSHClassOutput, MethodError> {
        use structmine_store::StableHash;
        let hier = Self::validate(dataset)?;
        Ok(crate::pipeline::run_memoized(
            "weshclass/predict",
            |h| {
                h.write_u128(dataset.fingerprint());
                sup.stable_hash(h);
                wv.stable_hash(h);
                self.stable_hash(h);
            },
            || self.run_validated(dataset, sup, wv, &hier),
        ))
    }

    /// Run WeSHClass on a tree dataset, bypassing the artifact store.
    pub fn run_uncached(
        &self,
        dataset: &Dataset,
        sup: &Supervision,
        wv: &WordVectors,
    ) -> Result<WeSHClassOutput, MethodError> {
        let hier = Self::validate(dataset)?;
        Ok(self.run_validated(dataset, sup, wv, &hier))
    }

    /// The algorithm proper, over a pre-validated hierarchy.
    fn run_validated(
        &self,
        dataset: &Dataset,
        sup: &Supervision,
        wv: &WordVectors,
        hier: &crate::common::HierView<'_>,
    ) -> WeSHClassOutput {
        let _stage = structmine_store::context::stage_guard("weshclass/run");
        let taxonomy = hier.taxonomy;
        let class_of_node = |node: NodeId| -> usize { hier.class_of(node) };

        // Seeds per class: from keyword supervision directly, or from
        // labeled docs' top TF-IDF terms (leaf supervision propagates to
        // ancestors).
        let class_seeds = self.class_seeds(dataset, sup, wv, hier);

        let features = crate::common::embedding_features(dataset, wv);
        let n_docs = dataset.corpus.len();

        // Local classifier per internal node with >= 2 children.
        let local: std::collections::HashMap<NodeId, MlpClassifier> =
            structmine_store::context::with_stage_label("weshclass/local-train", || {
                let mut local = std::collections::HashMap::new();
                for node in std::iter::once(taxonomy.root()).chain(taxonomy.non_root_nodes()) {
                    let children = taxonomy.children(node);
                    if children.is_empty() {
                        continue;
                    }
                    let clf = self.train_local(dataset, wv, &class_seeds, children, class_of_node);
                    local.insert(node, clf);
                }
                local
            });
        let _sub = structmine_store::context::stage_guard("weshclass/assign");

        // Level-by-level global assignment.
        let max_depth = taxonomy.max_depth();
        // log P(node | doc) accumulated along paths.
        let mut path_logp: Vec<std::collections::HashMap<NodeId, f32>> =
            vec![std::collections::HashMap::from([(taxonomy.root(), 0.0f32)]); n_docs];

        for _level in 1..=max_depth {
            // For every doc, extend each frontier node by its children.
            let mut per_parent_probs: std::collections::HashMap<NodeId, Matrix> =
                std::collections::HashMap::new();
            for (&parent, clf) in &local {
                let mut probs = clf.predict_proba(&features);
                if self.self_train {
                    // One round of soft sharpening stands in for the paper's
                    // per-level self-training refinement on local outputs.
                    probs = selftrain::target_distribution(&probs);
                }
                per_parent_probs.insert(parent, probs);
            }

            // Each document's frontier extension only reads the shared
            // per-parent probability tables, so the documents are shared
            // across the policy's threads.
            path_logp = par_map_chunks(&self.exec, &path_logp, |i, frontier| {
                let mut next: std::collections::HashMap<NodeId, f32> =
                    std::collections::HashMap::new();
                // On a DAG a child can be reachable from two frontier
                // parents; merging with `max` is commutative, so the result
                // does not depend on the frontier's hash iteration order.
                let relax =
                    |next: &mut std::collections::HashMap<NodeId, f32>, node: NodeId, logp: f32| {
                        next.entry(node)
                            .and_modify(|v| *v = v.max(logp))
                            .or_insert(logp);
                    };
                for (&node, &logp) in frontier {
                    let children = taxonomy.children(node);
                    if children.is_empty() {
                        // Leaf above max depth: carry forward.
                        relax(&mut next, node, logp);
                        continue;
                    }
                    let probs = &per_parent_probs[&node];
                    if self.use_global {
                        for (j, &child) in children.iter().enumerate() {
                            relax(&mut next, child, logp + probs.get(i, j).max(1e-9).ln());
                        }
                    } else {
                        // Greedy: only the argmax child survives.
                        let row: Vec<f32> = (0..children.len()).map(|j| probs.get(i, j)).collect();
                        let best = vector::argmax(&row).unwrap_or(0);
                        relax(&mut next, children[best], logp + row[best].max(1e-9).ln());
                    }
                }
                next
            });
        }

        // Final: best surviving node; its root path is the prediction.
        let predictions = par_map_chunks(&self.exec, &path_logp, |_, frontier| {
            // Tie-break equal log-probabilities on the node id: `frontier`
            // is a hash map, and a plain max over its iteration order would
            // differ from process to process.
            let best = frontier
                .iter()
                .max_by(|a, b| {
                    a.1.partial_cmp(b.1)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(b.0.cmp(a.0))
                })
                .map(|(&n, _)| n)
                .unwrap_or(taxonomy.root());
            taxonomy
                .path_from_root(best)
                .into_iter()
                .map(class_of_node)
                .collect()
        });

        WeSHClassOutput {
            path_predictions: predictions,
        }
    }

    fn class_seeds(
        &self,
        dataset: &Dataset,
        sup: &Supervision,
        wv: &WordVectors,
        hier: &crate::common::HierView<'_>,
    ) -> Vec<Vec<TokenId>> {
        match sup {
            Supervision::LabelNames(seeds) | Supervision::Keywords(seeds) => seeds
                .iter()
                .map(|seed| {
                    let mut kw = seed.clone();
                    let center = wv.mean_vector(seed);
                    for (t, _) in wv.nearest(&center, 16, seed) {
                        if kw.len() >= 8 {
                            break;
                        }
                        kw.push(t);
                    }
                    kw
                })
                .collect(),
            Supervision::LabeledDocs(pairs) => {
                let tfidf = TfIdf::fit(&dataset.corpus);
                let taxonomy = hier.taxonomy;
                let mut scores: Vec<std::collections::HashMap<TokenId, f32>> =
                    vec![std::collections::HashMap::new(); dataset.n_classes()];
                for &(i, c) in pairs {
                    // A labeled leaf doc also evidences the leaf's ancestors.
                    let node = dataset.class_nodes[c];
                    let mut nodes = vec![node];
                    nodes.extend(taxonomy.ancestors(node));
                    for n in nodes {
                        let class = hier.class_of(n);
                        for (t, w) in tfidf.vectorize(&dataset.corpus.docs[i].tokens) {
                            *scores[class].entry(t).or_insert(0.0) += w;
                        }
                    }
                }
                scores
                    .into_iter()
                    .map(|m| {
                        let mut v: Vec<(TokenId, f32)> = m.into_iter().collect();
                        // Token-id tie-break: `m` is a hash map, so without
                        // it equal scores would keep a process-dependent
                        // subset after the truncation below.
                        v.sort_by(|a, b| {
                            b.1.partial_cmp(&a.1)
                                .unwrap_or(std::cmp::Ordering::Equal)
                                .then(a.0.cmp(&b.0))
                        });
                        v.into_iter().take(8).map(|(t, _)| t).collect()
                    })
                    .collect()
            }
        }
    }

    /// Train the local classifier over one node's children.
    fn train_local(
        &self,
        dataset: &Dataset,
        wv: &WordVectors,
        class_seeds: &[Vec<TokenId>],
        children: &[NodeId],
        class_of_node: impl Fn(NodeId) -> usize,
    ) -> MlpClassifier {
        let tfidf = TfIdf::fit(&dataset.corpus);
        let unigram = dataset.corpus.vocab.unigram_weights(1.0);
        let mut rng = lrng::seeded(self.seed ^ children[0] as u64);
        let k = children.len();
        let mut x = Matrix::zeros(k * self.pseudo_per_class, wv.dim());
        let mut y = Vec::with_capacity(k * self.pseudo_per_class);
        let west = WeSTClass {
            seed: self.seed,
            ..Default::default()
        };
        for (j, &child) in children.iter().enumerate() {
            let class = class_of_node(child);
            let seeds = &class_seeds[class];
            // vMF over the child's seeds (or raw keyword sampling for the
            // No-vMF ablation).
            let vmf = if self.use_vmf && !seeds.is_empty() {
                let vecs: Vec<&[f32]> = seeds.iter().map(|&t| wv.get(t)).collect();
                Some(structmine_embed::vmf::VonMisesFisher::fit(&vecs))
            } else {
                None
            };
            for p in 0..self.pseudo_per_class {
                let doc: Vec<TokenId> = match &vmf {
                    Some(vmf) => {
                        // Reuse WeSTClass's generator via its public pieces:
                        // sample direction, draw similar words.
                        let dir = vmf.sample(&mut rng);
                        let candidates = wv.nearest(&dir, 40, &[]);
                        let sims: Vec<f32> = candidates
                            .iter()
                            .map(|&(_, s)| s * west.similarity_temp)
                            .collect();
                        let probs = structmine_linalg::stats::softmax(&sims);
                        (0..west.pseudo_len)
                            .map(|_| {
                                if rng.gen::<f32>() < west.background_alpha {
                                    lrng::sample_categorical(&mut rng, &unigram) as TokenId
                                } else {
                                    candidates[lrng::sample_categorical(&mut rng, &probs)].0
                                }
                            })
                            .collect()
                    }
                    None => (0..west.pseudo_len)
                        .map(|_| {
                            if seeds.is_empty() || rng.gen::<f32>() < 0.4 {
                                lrng::sample_categorical(&mut rng, &unigram) as TokenId
                            } else {
                                seeds[rng.gen_range(0..seeds.len())]
                            }
                        })
                        .collect(),
                };
                let weights: Vec<f32> = doc.iter().map(|&t| tfidf.idf(t)).collect();
                let v = wv.doc_vector(&doc, Some(&weights));
                x.row_mut(j * self.pseudo_per_class + p).copy_from_slice(&v);
                y.push(j);
            }
        }
        let mut clf = MlpClassifier::new(wv.dim(), self.hidden, k, self.seed ^ 7);
        let t = structmine_nn::classifiers::one_hot(&y, k, 0.2);
        clf.fit(
            &x,
            &t,
            &TrainConfig {
                epochs: 25,
                seed: self.seed,
                ..Default::default()
            },
        );
        clf
    }
}

/// Micro-F1 over node sets: global TP / FP / FN across all classes.
pub fn path_micro_f1(pred: &[Vec<usize>], gold: &[Vec<usize>]) -> f32 {
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut fn_ = 0usize;
    for (p, g) in pred.iter().zip(gold) {
        let ps: std::collections::HashSet<_> = p.iter().collect();
        let gs: std::collections::HashSet<_> = g.iter().collect();
        tp += ps.intersection(&gs).count();
        fp += ps.difference(&gs).count();
        fn_ += gs.difference(&ps).count();
    }
    if 2 * tp + fp + fn_ == 0 {
        0.0
    } else {
        2.0 * tp as f32 / (2 * tp + fp + fn_) as f32
    }
}

/// Macro-F1 over node sets: per-class F1 from set membership, averaged.
pub fn path_macro_f1(pred: &[Vec<usize>], gold: &[Vec<usize>], n_classes: usize) -> f32 {
    let mut tp = vec![0usize; n_classes];
    let mut fp = vec![0usize; n_classes];
    let mut fn_ = vec![0usize; n_classes];
    for (p, g) in pred.iter().zip(gold) {
        for &c in p {
            if g.contains(&c) {
                tp[c] += 1;
            } else {
                fp[c] += 1;
            }
        }
        for &c in g {
            if !p.contains(&c) {
                fn_[c] += 1;
            }
        }
    }
    let mut sum = 0.0f32;
    for c in 0..n_classes {
        let denom = 2 * tp[c] + fp[c] + fn_[c];
        if denom > 0 {
            sum += 2.0 * tp[c] as f32 / denom as f32;
        }
    }
    sum / n_classes as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use structmine_embed::{Sgns, SgnsConfig};
    use structmine_text::synth::recipes;

    fn setup() -> (Dataset, WordVectors) {
        let d = recipes::nyt_tree(0.15, 61).unwrap();
        let wv = Sgns::train(
            &d.corpus,
            &SgnsConfig {
                epochs: 4,
                dim: 24,
                ..Default::default()
            },
        );
        (d, wv)
    }

    fn scores(d: &Dataset, out: &WeSHClassOutput) -> (f32, f32) {
        let pred: Vec<Vec<usize>> = d
            .test_idx
            .iter()
            .map(|&i| out.path_predictions[i].clone())
            .collect();
        let gold = d.test_gold_sets();
        (
            path_micro_f1(&pred, &gold),
            path_macro_f1(&pred, &gold, d.n_classes()),
        )
    }

    #[test]
    fn weshclass_predicts_valid_paths() {
        let (d, wv) = setup();
        let out = WeSHClass {
            pseudo_per_class: 30,
            ..Default::default()
        }
        .run(&d, &d.supervision_keywords(), &wv)
        .unwrap();
        let tax = d.taxonomy.as_ref().unwrap();
        for path in &out.path_predictions {
            assert_eq!(path.len(), 2, "expected level-2 paths");
            let parent_node = d.class_nodes[path[0]];
            let leaf_node = d.class_nodes[path[1]];
            assert_eq!(tax.parents(leaf_node), &[parent_node], "invalid path");
        }
    }

    #[test]
    fn keyword_supervision_beats_chance_strongly() {
        let (d, wv) = setup();
        let out = WeSHClass {
            pseudo_per_class: 30,
            ..Default::default()
        }
        .run(&d, &d.supervision_keywords(), &wv)
        .unwrap();
        let (micro, macro_) = scores(&d, &out);
        // Chance micro over 3 domains x 3 leaves ~ (1/3 + 1/9)/2 = 0.22.
        assert!(micro > 0.5, "micro {micro}");
        assert!(macro_ > 0.4, "macro {macro_}");
    }

    #[test]
    fn doc_supervision_works_too() {
        let (d, wv) = setup();
        let out = WeSHClass {
            pseudo_per_class: 30,
            ..Default::default()
        }
        .run(&d, &d.supervision_docs(5, 3), &wv)
        .unwrap();
        let (micro, _) = scores(&d, &out);
        assert!(micro > 0.4, "doc-supervised micro {micro}");
    }

    #[test]
    fn path_f1_helpers_known_values() {
        let pred = vec![vec![0, 1], vec![0, 2]];
        let gold = vec![vec![0, 1], vec![3, 4]];
        // TP=2, FP=2, FN=2 -> micro = 2*2/(4+2+2) = 0.5
        assert!((path_micro_f1(&pred, &gold) - 0.5).abs() < 1e-6);
        let mac = path_macro_f1(&pred, &gold, 5);
        assert!(mac > 0.0 && mac < 1.0);
    }
}
