//! End-to-end determinism of the parallel execution layer: whole methods
//! must produce identical outputs whether they run on one worker thread or
//! four. Thread count is a pure throughput knob, never a results knob.

use structmine::lotclass::LotClass;
use structmine::xclass::XClass;
use structmine_linalg::exec::ExecPolicy;
use structmine_plm::cache::{pretrained, Tier};
use structmine_text::synth::recipes;

#[test]
fn xclass_is_identical_across_thread_counts() {
    let d = recipes::agnews(0.08, 17).unwrap();
    let plm = pretrained(Tier::Test, 0);
    let one = XClass {
        exec: ExecPolicy::with_threads(1),
        ..Default::default()
    }
    .run(&d, &plm);
    let four = XClass {
        exec: ExecPolicy::with_threads(4),
        ..Default::default()
    }
    .run(&d, &plm);
    assert_eq!(one.predictions, four.predictions);
    assert_eq!(one.rep_predictions, four.rep_predictions);
    assert_eq!(one.align_predictions, four.align_predictions);
    assert_eq!(one.class_words, four.class_words);
}

#[test]
fn lotclass_is_identical_across_thread_counts() {
    let d = recipes::agnews(0.08, 18).unwrap();
    let plm = pretrained(Tier::Test, 0);
    let one = LotClass {
        exec: ExecPolicy::with_threads(1),
        ..Default::default()
    }
    .run(&d, &plm);
    let four = LotClass {
        exec: ExecPolicy::with_threads(4),
        ..Default::default()
    }
    .run(&d, &plm);
    assert_eq!(one.predictions, four.predictions);
    assert_eq!(one.pretrain_predictions, four.pretrain_predictions);
    assert_eq!(one.category_vocab, four.category_vocab);
    assert_eq!(one.n_pseudo_labeled, four.n_pseudo_labeled);
}

#[test]
fn zero_shot_entailment_is_identical_across_thread_counts() {
    let d = recipes::agnews(0.08, 19).unwrap();
    let plm = pretrained(Tier::Test, 0);
    let one = structmine::baselines::zero_shot_entail_with(&d, &plm, &ExecPolicy::with_threads(1));
    let four = structmine::baselines::zero_shot_entail_with(&d, &plm, &ExecPolicy::with_threads(4));
    assert_eq!(one, four);
}
