//! Ranking metrics over per-document label rankings (MICoL).

/// P@k: mean over documents of (relevant labels in top-k) / k.
pub fn precision_at_k(rankings: &[Vec<usize>], gold: &[Vec<usize>], k: usize) -> f32 {
    assert_eq!(rankings.len(), gold.len());
    if rankings.is_empty() || k == 0 {
        return 0.0;
    }
    let mut total = 0.0f32;
    for (r, g) in rankings.iter().zip(gold) {
        let hits = r.iter().take(k).filter(|l| g.contains(l)).count();
        total += hits as f32 / k as f32;
    }
    total / rankings.len() as f32
}

/// NDCG@k with binary relevance: DCG uses `1/log2(rank+1)` gains, normalized
/// by the ideal DCG given the document's number of gold labels.
///
/// Rankings must be duplicate-free (they are label orderings); duplicated
/// entries would be double-counted.
pub fn ndcg_at_k(rankings: &[Vec<usize>], gold: &[Vec<usize>], k: usize) -> f32 {
    assert_eq!(rankings.len(), gold.len());
    if rankings.is_empty() || k == 0 {
        return 0.0;
    }
    let mut total = 0.0f32;
    for (r, g) in rankings.iter().zip(gold) {
        let dcg: f32 = r
            .iter()
            .take(k)
            .enumerate()
            .filter(|(_, l)| g.contains(l))
            .map(|(i, _)| 1.0 / ((i + 2) as f32).log2())
            .sum();
        let ideal: f32 = (0..g.len().min(k))
            .map(|i| 1.0 / ((i + 2) as f32).log2())
            .sum();
        if ideal > 0.0 {
            total += dcg / ideal;
        }
    }
    total / rankings.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn perfect_ranking_scores_one() {
        let rankings = vec![vec![0, 1, 2]];
        let gold = vec![vec![0, 1, 2]];
        assert!((precision_at_k(&rankings, &gold, 3) - 1.0).abs() < 1e-6);
        assert!((ndcg_at_k(&rankings, &gold, 3) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn p_at_k_counts_topk_hits() {
        let rankings = vec![vec![5, 0, 9]];
        let gold = vec![vec![0, 1]];
        assert!((precision_at_k(&rankings, &gold, 3) - 1.0 / 3.0).abs() < 1e-6);
        assert!((precision_at_k(&rankings, &gold, 1) - 0.0).abs() < 1e-6);
    }

    #[test]
    fn ndcg_rewards_early_hits() {
        let gold = vec![vec![0]];
        let early = ndcg_at_k(&[vec![0, 1, 2]], &gold, 3);
        let late = ndcg_at_k(&[vec![1, 2, 0]], &gold, 3);
        assert!(early > late);
        assert!((early - 1.0).abs() < 1e-6);
    }

    #[test]
    fn ndcg_normalizes_by_gold_size() {
        // Only one gold label, k=3: placing it first is already ideal.
        let gold = vec![vec![7]];
        assert!((ndcg_at_k(&[vec![7, 1, 2]], &gold, 3) - 1.0).abs() < 1e-6);
    }

    proptest! {
        #[test]
        fn metrics_bounded_zero_one(
            ranking in Just((0usize..10).collect::<Vec<_>>()).prop_shuffle(),
            gold in proptest::collection::hash_set(0usize..10, 1..4),
        ) {
            let gold: Vec<usize> = gold.into_iter().collect();
            let r = vec![ranking];
            let g = vec![gold];
            for k in 1..=5usize {
                let p = precision_at_k(&r, &g, k);
                let n = ndcg_at_k(&r, &g, k);
                prop_assert!((0.0..=1.0 + 1e-6).contains(&p));
                prop_assert!((0.0..=1.0 + 1e-6).contains(&n));
            }
        }
    }
}
