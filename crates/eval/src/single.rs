//! Single-label classification metrics.

/// Fraction of exact matches.
pub fn accuracy(pred: &[usize], gold: &[usize]) -> f32 {
    assert_eq!(pred.len(), gold.len());
    if pred.is_empty() {
        return 0.0;
    }
    pred.iter().zip(gold).filter(|(a, b)| a == b).count() as f32 / pred.len() as f32
}

/// Per-class precision/recall/F1. Returns `(precision, recall, f1)` triples
/// indexed by class.
pub fn per_class_f1(pred: &[usize], gold: &[usize], n_classes: usize) -> Vec<(f32, f32, f32)> {
    assert_eq!(pred.len(), gold.len());
    let mut tp = vec![0usize; n_classes];
    let mut fp = vec![0usize; n_classes];
    let mut fn_ = vec![0usize; n_classes];
    for (&p, &g) in pred.iter().zip(gold) {
        if p == g {
            tp[p] += 1;
        } else {
            if p < n_classes {
                fp[p] += 1;
            }
            if g < n_classes {
                fn_[g] += 1;
            }
        }
    }
    (0..n_classes)
        .map(|c| {
            let prec = safe_div(tp[c] as f32, (tp[c] + fp[c]) as f32);
            let rec = safe_div(tp[c] as f32, (tp[c] + fn_[c]) as f32);
            let f1 = if prec + rec > 0.0 {
                2.0 * prec * rec / (prec + rec)
            } else {
                0.0
            };
            (prec, rec, f1)
        })
        .collect()
}

/// Macro-averaged F1 (unweighted mean of per-class F1).
pub fn macro_f1(pred: &[usize], gold: &[usize], n_classes: usize) -> f32 {
    let per = per_class_f1(pred, gold, n_classes);
    if per.is_empty() {
        return 0.0;
    }
    per.iter().map(|&(_, _, f1)| f1).sum::<f32>() / per.len() as f32
}

/// Micro-averaged F1. For single-label multi-class prediction this equals
/// accuracy (every error is one FP and one FN).
pub fn micro_f1(pred: &[usize], gold: &[usize]) -> f32 {
    accuracy(pred, gold)
}

fn safe_div(a: f32, b: f32) -> f32 {
    if b > 0.0 {
        a / b
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn perfect_predictions_score_one() {
        let gold = vec![0, 1, 2, 1, 0];
        assert_eq!(accuracy(&gold, &gold), 1.0);
        assert!((macro_f1(&gold, &gold, 3) - 1.0).abs() < 1e-6);
        assert!((micro_f1(&gold, &gold) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn macro_f1_punishes_minority_class_failure() {
        // 9 of class 0 (all right), 1 of class 1 (wrong).
        let gold = vec![0, 0, 0, 0, 0, 0, 0, 0, 0, 1];
        let pred = vec![0; 10];
        let micro = micro_f1(&pred, &gold);
        let mac = macro_f1(&pred, &gold, 2);
        assert!((micro - 0.9).abs() < 1e-6);
        assert!(mac < 0.5, "macro {mac} should be dragged down by class 1");
    }

    #[test]
    fn per_class_precision_recall_known_case() {
        // class 0: tp=1 fp=1 fn=1 -> p=0.5 r=0.5 f1=0.5
        let gold = vec![0, 0, 1, 1];
        let pred = vec![0, 1, 0, 1];
        let per = per_class_f1(&pred, &gold, 2);
        assert!((per[0].0 - 0.5).abs() < 1e-6);
        assert!((per[0].1 - 0.5).abs() < 1e-6);
        assert!((per[0].2 - 0.5).abs() < 1e-6);
    }

    #[test]
    fn empty_input_scores_zero() {
        assert_eq!(accuracy(&[], &[]), 0.0);
        assert_eq!(macro_f1(&[], &[], 0), 0.0);
    }

    #[test]
    fn absent_class_gets_zero_f1() {
        let gold = vec![0, 0];
        let pred = vec![0, 0];
        let per = per_class_f1(&pred, &gold, 2);
        assert_eq!(per[1], (0.0, 0.0, 0.0));
    }

    proptest! {
        #[test]
        fn metrics_are_bounded(
            pred in proptest::collection::vec(0usize..4, 1..64),
        ) {
            let gold: Vec<usize> = pred.iter().map(|&p| (p + 1) % 4).collect();
            let acc = accuracy(&pred, &gold);
            let mac = macro_f1(&pred, &gold, 4);
            prop_assert!((0.0..=1.0).contains(&acc));
            prop_assert!((0.0..=1.0).contains(&mac));
        }

        #[test]
        fn micro_equals_accuracy(
            pred in proptest::collection::vec(0usize..5, 1..64),
            gold in proptest::collection::vec(0usize..5, 1..64),
        ) {
            let n = pred.len().min(gold.len());
            prop_assert_eq!(micro_f1(&pred[..n], &gold[..n]), accuracy(&pred[..n], &gold[..n]));
        }
    }
}
