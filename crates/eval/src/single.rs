//! Single-label classification metrics.
//!
//! # Empty-input convention
//!
//! A score over zero examples is *undefined*, not zero: returning `0.0`
//! made an empty test slice indistinguishable from a genuinely worst-case
//! model, and table code silently printed it as a real score. [`accuracy`],
//! [`macro_f1`] and [`micro_f1`] therefore return [`f32::NAN`] on empty
//! input (and `macro_f1` on `n_classes == 0`). NaN propagates loudly
//! through any aggregation and formats as `NaN` in a table — an empty
//! input is a harness bug to surface, never a score to report. Callers
//! that can legitimately see empty inputs must check
//! [`f32::is_nan`] explicitly.

/// Fraction of exact matches. Returns NaN on empty input (see the module
/// docs for the convention).
pub fn accuracy(pred: &[usize], gold: &[usize]) -> f32 {
    assert_eq!(pred.len(), gold.len());
    if pred.is_empty() {
        return f32::NAN;
    }
    pred.iter().zip(gold).filter(|(a, b)| a == b).count() as f32 / pred.len() as f32
}

/// Per-class precision/recall/F1. Returns `(precision, recall, f1)` triples
/// indexed by class. Labels at or beyond `n_classes` (on either side) fall
/// outside every tracked class and are skipped — including agreeing pairs,
/// which previously panicked with an index out of bounds.
pub fn per_class_f1(pred: &[usize], gold: &[usize], n_classes: usize) -> Vec<(f32, f32, f32)> {
    assert_eq!(pred.len(), gold.len());
    let mut tp = vec![0usize; n_classes];
    let mut fp = vec![0usize; n_classes];
    let mut fn_ = vec![0usize; n_classes];
    for (&p, &g) in pred.iter().zip(gold) {
        if p == g {
            if p < n_classes {
                tp[p] += 1;
            }
        } else {
            if p < n_classes {
                fp[p] += 1;
            }
            if g < n_classes {
                fn_[g] += 1;
            }
        }
    }
    (0..n_classes)
        .map(|c| {
            let prec = safe_div(tp[c] as f32, (tp[c] + fp[c]) as f32);
            let rec = safe_div(tp[c] as f32, (tp[c] + fn_[c]) as f32);
            let f1 = if prec + rec > 0.0 {
                2.0 * prec * rec / (prec + rec)
            } else {
                0.0
            };
            (prec, rec, f1)
        })
        .collect()
}

/// Macro-averaged F1 (unweighted mean of per-class F1). Returns NaN on
/// empty input or `n_classes == 0` (see the module docs).
pub fn macro_f1(pred: &[usize], gold: &[usize], n_classes: usize) -> f32 {
    if pred.is_empty() {
        assert_eq!(pred.len(), gold.len());
        return f32::NAN;
    }
    let per = per_class_f1(pred, gold, n_classes);
    if per.is_empty() {
        return f32::NAN;
    }
    per.iter().map(|&(_, _, f1)| f1).sum::<f32>() / per.len() as f32
}

/// Micro-averaged F1. For single-label multi-class prediction this equals
/// accuracy (every error is one FP and one FN); it inherits accuracy's
/// NaN-on-empty convention.
pub fn micro_f1(pred: &[usize], gold: &[usize]) -> f32 {
    accuracy(pred, gold)
}

fn safe_div(a: f32, b: f32) -> f32 {
    if b > 0.0 {
        a / b
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn perfect_predictions_score_one() {
        let gold = vec![0, 1, 2, 1, 0];
        assert_eq!(accuracy(&gold, &gold), 1.0);
        assert!((macro_f1(&gold, &gold, 3) - 1.0).abs() < 1e-6);
        assert!((micro_f1(&gold, &gold) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn macro_f1_punishes_minority_class_failure() {
        // 9 of class 0 (all right), 1 of class 1 (wrong).
        let gold = vec![0, 0, 0, 0, 0, 0, 0, 0, 0, 1];
        let pred = vec![0; 10];
        let micro = micro_f1(&pred, &gold);
        let mac = macro_f1(&pred, &gold, 2);
        assert!((micro - 0.9).abs() < 1e-6);
        assert!(mac < 0.5, "macro {mac} should be dragged down by class 1");
    }

    #[test]
    fn per_class_precision_recall_known_case() {
        // class 0: tp=1 fp=1 fn=1 -> p=0.5 r=0.5 f1=0.5
        let gold = vec![0, 0, 1, 1];
        let pred = vec![0, 1, 0, 1];
        let per = per_class_f1(&pred, &gold, 2);
        assert!((per[0].0 - 0.5).abs() < 1e-6);
        assert!((per[0].1 - 0.5).abs() < 1e-6);
        assert!((per[0].2 - 0.5).abs() < 1e-6);
    }

    #[test]
    fn empty_input_is_nan_not_a_worst_score() {
        assert!(accuracy(&[], &[]).is_nan());
        assert!(macro_f1(&[], &[], 0).is_nan());
        assert!(macro_f1(&[], &[], 3).is_nan());
        assert!(micro_f1(&[], &[]).is_nan());
        // Zero tracked classes over real examples is equally undefined.
        assert!(macro_f1(&[0, 1], &[0, 1], 0).is_nan());
    }

    #[test]
    fn out_of_range_labels_are_skipped_not_a_panic() {
        // Regression: an agreeing out-of-range pair (p == g == 7 with
        // n_classes == 2) used to hit `tp[p]` unguarded and panic.
        let pred = vec![0, 7, 7, 1];
        let gold = vec![0, 7, 2, 1];
        let per = per_class_f1(&pred, &gold, 2);
        assert_eq!(per.len(), 2);
        // Classes 0 and 1 are perfect; the out-of-range labels contribute
        // to no tracked class.
        assert_eq!(per[0], (1.0, 1.0, 1.0));
        assert_eq!(per[1], (1.0, 1.0, 1.0));
        let mac = macro_f1(&pred, &gold, 2);
        assert!((mac - 1.0).abs() < 1e-6, "macro {mac}");
    }

    #[test]
    fn absent_class_gets_zero_f1() {
        let gold = vec![0, 0];
        let pred = vec![0, 0];
        let per = per_class_f1(&pred, &gold, 2);
        assert_eq!(per[1], (0.0, 0.0, 0.0));
    }

    proptest! {
        #[test]
        fn metrics_are_bounded(
            pred in proptest::collection::vec(0usize..4, 1..64),
        ) {
            let gold: Vec<usize> = pred.iter().map(|&p| (p + 1) % 4).collect();
            let acc = accuracy(&pred, &gold);
            let mac = macro_f1(&pred, &gold, 4);
            prop_assert!((0.0..=1.0).contains(&acc));
            prop_assert!((0.0..=1.0).contains(&mac));
        }

        #[test]
        fn empty_never_equals_any_real_score(
            pred in proptest::collection::vec(0usize..4, 1..64),
        ) {
            // Whatever a non-empty input scores, the empty input must be
            // distinguishable from it — in particular from the worst score.
            let gold: Vec<usize> = pred.iter().map(|&p| (p + 1) % 4).collect();
            let real_acc = accuracy(&pred, &gold);
            let real_mac = macro_f1(&pred, &gold, 4);
            prop_assert!(real_acc.is_finite());
            prop_assert!(real_mac.is_finite());
            prop_assert!(accuracy(&[], &[]) != real_acc);
            prop_assert!(macro_f1(&[], &[], 4) != real_mac);
        }

        #[test]
        fn out_of_range_labels_never_panic(
            pred in proptest::collection::vec(0usize..10, 1..64),
            gold in proptest::collection::vec(0usize..10, 1..64),
        ) {
            let n = pred.len().min(gold.len());
            // n_classes = 3 while labels go to 9: must stay bounded, never
            // index out of range.
            let per = per_class_f1(&pred[..n], &gold[..n], 3);
            prop_assert_eq!(per.len(), 3);
            let mac = macro_f1(&pred[..n], &gold[..n], 3);
            prop_assert!((0.0..=1.0).contains(&mac));
        }

        #[test]
        fn micro_equals_accuracy(
            pred in proptest::collection::vec(0usize..5, 1..64),
            gold in proptest::collection::vec(0usize..5, 1..64),
        ) {
            let n = pred.len().min(gold.len());
            prop_assert_eq!(micro_f1(&pred[..n], &gold[..n]), accuracy(&pred[..n], &gold[..n]));
        }
    }
}
