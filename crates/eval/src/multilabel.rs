//! Multi-label classification metrics (TaxoClass).

use std::collections::HashSet;

/// Example-F1: mean over documents of `2|true ∩ pred| / (|true| + |pred|)`.
pub fn example_f1(pred: &[Vec<usize>], gold: &[Vec<usize>]) -> f32 {
    assert_eq!(pred.len(), gold.len());
    if pred.is_empty() {
        return 0.0;
    }
    let mut total = 0.0f32;
    for (p, g) in pred.iter().zip(gold) {
        let ps: HashSet<_> = p.iter().collect();
        let gs: HashSet<_> = g.iter().collect();
        let inter = ps.intersection(&gs).count();
        let denom = ps.len() + gs.len();
        if denom > 0 {
            total += 2.0 * inter as f32 / denom as f32;
        }
    }
    total / pred.len() as f32
}

/// P@1 over label *sets*: fraction of documents whose top-1 prediction (the
/// first element of each prediction list) is among the gold labels.
pub fn precision_at_1_sets(top1: &[usize], gold: &[Vec<usize>]) -> f32 {
    assert_eq!(top1.len(), gold.len());
    if top1.is_empty() {
        return 0.0;
    }
    top1.iter().zip(gold).filter(|(p, g)| g.contains(p)).count() as f32 / top1.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_f1_exact_match_is_one() {
        let gold = vec![vec![0, 1], vec![2]];
        assert!((example_f1(&gold, &gold) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn example_f1_partial_overlap() {
        let pred = vec![vec![0, 1]];
        let gold = vec![vec![1, 2]];
        // intersection 1, sizes 2+2 -> 2*1/4 = 0.5
        assert!((example_f1(&pred, &gold) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn example_f1_disjoint_is_zero() {
        let pred = vec![vec![0]];
        let gold = vec![vec![1]];
        assert_eq!(example_f1(&pred, &gold), 0.0);
    }

    #[test]
    fn example_f1_handles_duplicates_as_sets() {
        let pred = vec![vec![0, 0, 1]];
        let gold = vec![vec![0, 1]];
        assert!((example_f1(&pred, &gold) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn p_at_1_counts_set_membership() {
        let top1 = vec![3, 0];
        let gold = vec![vec![1, 3], vec![2]];
        assert!((precision_at_1_sets(&top1, &gold) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn empty_inputs_are_zero() {
        assert_eq!(example_f1(&[], &[]), 0.0);
        assert_eq!(precision_at_1_sets(&[], &[]), 0.0);
    }
}
