//! Classification and ranking metrics used across the tutorial's tables.
//!
//! * Micro-/Macro-F1 and accuracy for single-label tasks (WeSTClass, ConWea,
//!   LOTClass, X-Class, PromptClass, WeSHClass, MetaCat tables).
//! * Example-F1 and P@1 for multi-label classification (TaxoClass).
//! * P@k and NDCG@k for multi-label ranking (MICoL).
//! * Mean ± standard deviation aggregation over seeds, matching how the
//!   papers report repeated runs.

pub mod multilabel;
pub mod ranking;
pub mod single;

pub use multilabel::{example_f1, precision_at_1_sets};
pub use ranking::{ndcg_at_k, precision_at_k};
pub use single::{accuracy, macro_f1, micro_f1, per_class_f1};

/// Mean and population standard deviation of repeated measurements.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MeanStd {
    /// Arithmetic mean.
    pub mean: f32,
    /// Population standard deviation.
    pub std: f32,
}

impl MeanStd {
    /// Aggregate a slice of per-seed scores.
    pub fn of(values: &[f32]) -> MeanStd {
        if values.is_empty() {
            return MeanStd {
                mean: 0.0,
                std: 0.0,
            };
        }
        let mean = values.iter().sum::<f32>() / values.len() as f32;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / values.len() as f32;
        MeanStd {
            mean,
            std: var.sqrt(),
        }
    }
}

impl std::fmt::Display for MeanStd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.3} ({:.3})", self.mean, self.std)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_std_basic() {
        let m = MeanStd::of(&[1.0, 2.0, 3.0]);
        assert!((m.mean - 2.0).abs() < 1e-6);
        assert!((m.std - (2.0f32 / 3.0).sqrt()).abs() < 1e-5);
        assert_eq!(
            MeanStd::of(&[]),
            MeanStd {
                mean: 0.0,
                std: 0.0
            }
        );
    }

    #[test]
    fn mean_std_formats() {
        let m = MeanStd::of(&[0.5, 0.5]);
        assert_eq!(m.to_string(), "0.500 (0.000)");
    }
}
