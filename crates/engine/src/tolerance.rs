//! Accuracy-tolerance harness for the Fast precision tier (DESIGN §13).
//!
//! The Fast tier trades bitwise reproducibility for throughput: its
//! polynomial `tanh`/`exp` approximations and skip-free matmul kernels
//! change the low bits of every encode. That trade is only acceptable if
//! it is *measured* — this module classifies a document set under an
//! Exact and a Fast rule built from the same dataset and PLM, and reports
//! how often the predicted labels agree and how far the winning-class
//! confidences drift.
//!
//! Two consumers:
//! * `structmine-serve` runs [`self_check`] at startup when launched with
//!   `--precision fast`, and refuses to serve (`/healthz` → 503
//!   `unusable`) if the Fast rule disagrees with Exact beyond the bounds.
//! * The test layer property-tests the bounds across methods and seeds
//!   (`tests/tolerance.rs`), so a kernel change that silently degrades
//!   the approximation shows up as a label-flip rate, not a vague perf
//!   note.

use crate::{Engine, EngineError};
use structmine_linalg::Precision;

/// Minimum fraction of documents whose predicted label must agree between
/// the Exact and Fast rules.
pub const MIN_AGREEMENT: f32 = 0.995;

/// Maximum tolerated `|confidence_exact - confidence_fast|` on any single
/// document (each tier's confidence is its own winning class's
/// probability, so a label flip near the decision boundary stays small).
pub const MAX_CONFIDENCE_DELTA: f32 = 0.05;

/// The outcome of one Exact-vs-Fast comparison.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ToleranceReport {
    /// Documents compared.
    pub n: usize,
    /// Fraction of documents with the same predicted label (1.0 when
    /// `n == 0` — an empty comparison has nothing to disagree about).
    pub agreement: f32,
    /// Largest `|confidence_exact - confidence_fast|` over all documents.
    pub max_confidence_delta: f32,
}

impl ToleranceReport {
    /// Whether the comparison stays inside the published bounds
    /// ([`MIN_AGREEMENT`], [`MAX_CONFIDENCE_DELTA`]).
    pub fn within_bounds(&self) -> bool {
        self.agreement >= MIN_AGREEMENT && self.max_confidence_delta <= MAX_CONFIDENCE_DELTA
    }

    /// One-line human-readable summary (health endpoints, logs).
    pub fn summary(&self) -> String {
        format!(
            "label agreement {:.4} over {} docs, max |confidence delta| {:.4}",
            self.agreement, self.n, self.max_confidence_delta
        )
    }
}

/// Classify `lines` under both engines and compare the predictions.
/// The engines are expected to host the same method over the same labels;
/// mismatched prediction counts are an internal error.
pub fn compare(
    exact: &Engine,
    fast: &Engine,
    lines: &[String],
) -> Result<ToleranceReport, EngineError> {
    let a = exact.classify(lines)?;
    let b = fast.classify(lines)?;
    if a.len() != b.len() {
        return Err(EngineError::Internal {
            what: format!(
                "tolerance comparison got {} exact vs {} fast predictions",
                a.len(),
                b.len()
            ),
        });
    }
    let n = a.len();
    if n == 0 {
        return Ok(ToleranceReport {
            n: 0,
            agreement: 1.0,
            max_confidence_delta: 0.0,
        });
    }
    let mut agree = 0usize;
    let mut max_delta = 0.0f32;
    for (pa, pb) in a.iter().zip(&b) {
        if pa.class == pb.class {
            agree += 1;
        }
        max_delta = max_delta.max((pa.confidence - pb.confidence).abs());
    }
    Ok(ToleranceReport {
        n,
        agreement: agree as f32 / n as f32,
        max_confidence_delta: max_delta,
    })
}

/// The engine's eval-split documents rendered back to text — the lines
/// the tolerance harness classifies. Label-names engines have no held-out
/// split (gold labels are unknown), so they fall back to the whole corpus:
/// the comparison needs documents, not their labels. Rendering goes
/// through the corpus vocabulary, so tokenizing them again round-trips
/// exactly.
pub fn eval_lines(engine: &Engine) -> Vec<String> {
    let d = engine.dataset();
    if d.test_idx.is_empty() {
        return (0..d.corpus.len()).map(|i| d.corpus.render(i)).collect();
    }
    d.test_idx.iter().map(|&i| d.corpus.render(i)).collect()
}

/// Startup self-check for a Fast-tier engine: build its Exact twin
/// (sharing the dataset and PLM), classify the full eval split under
/// both, and report. For an engine already serving Exact this is trivially
/// in bounds — the twin *is* the engine's own configuration — so callers
/// can run it unconditionally and only pay on the Fast tier.
pub fn self_check(engine: &Engine) -> Result<ToleranceReport, EngineError> {
    if engine.precision() == Precision::Exact {
        return Ok(ToleranceReport {
            n: 0,
            agreement: 1.0,
            max_confidence_delta: 0.0,
        });
    }
    let exact = engine.at_precision(Precision::Exact);
    compare(&exact, engine, &eval_lines(engine))
}
