//! `structmine-engine` — the load-once/run-many layer shared by the CLI,
//! the bench tables, and `structmine-serve`.
//!
//! [`Engine::load`] resolves a dataset (from raw label names, a synthetic
//! recipe, or an explicit [`Dataset`]) and the PLM once, through the same
//! artifact store every binary already uses. The engine then exposes two
//! kinds of work:
//!
//! * **Serving** — [`Engine::classify`] and [`Engine::explain`] apply a
//!   *frozen per-document rule* (fitted lazily, once) to new documents.
//!   Because every rule is per-document and the underlying kernels are
//!   row-independent bitwise, a document's prediction is byte-identical
//!   whether it is classified alone, in any batch, at any thread count —
//!   the invariant `structmine-serve`'s adaptive micro-batching relies on.
//! * **Benchmarking** — [`Engine::fitted_predictions`] and
//!   [`Engine::xclass_output`] replay the exact memoized method pipelines
//!   the bench tables always ran, so table output stays byte-identical.
//!
//! Everything expensive is fitted lazily and cached inside the engine;
//! [`Engine::warm`] forces the serving model to fit eagerly (servers call
//! it before accepting traffic).

use parking_lot::Mutex;
use std::sync::Arc;
use structmine::baselines;
use structmine::common;
use structmine::conwea::ConWea;
use structmine::lotclass::{LotClass, LotClassModel};
use structmine::promptclass::PromptClass;
use structmine::westclass::WeSTClass;
use structmine::xclass::{XClass, XClassModel, XClassOutput};
use structmine_linalg::exec::{par_map_chunks, ExecPolicy};
use structmine_linalg::{stats, vector, Matrix, Precision};
use structmine_plm::artifacts::{DocMeanReps, DocMeanRepsShard, EncodeDeltaCorpus};
use structmine_plm::MiniPlm;
use structmine_shard::shard_range;
use structmine_text::delta::{DeltaCorpus, DeltaError, Generation};
use structmine_text::synth::SynthError;
use structmine_text::vocab::TokenId;
use structmine_text::{Dataset, Doc};

pub mod loaders;
pub mod tolerance;

/// The classification method an engine hosts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MethodKind {
    /// X-Class: class-oriented representations + confident-subset
    /// classifier. Servable.
    XClass,
    /// LOTClass: category vocabulary + masked category prediction +
    /// self-trained classifier. Servable.
    LotClass,
    /// PromptClass-style prompting (RTD verbalizer). Servable zero-shot.
    Prompt,
    /// BERT with simple matching (label-name prototypes). Servable.
    Match,
    /// WeSTClass (static embeddings, pseudo-document pretraining).
    /// Transductive — fit-only, not servable.
    WeSTClass,
    /// ConWea (contextualized seed disambiguation). Transductive —
    /// fit-only, not servable.
    ConWea,
    /// Supervised upper bound (MLP on gold training labels). Fit-only.
    Supervised,
}

impl MethodKind {
    /// Parse a CLI-style method name.
    pub fn parse(name: &str) -> Option<MethodKind> {
        Some(match name {
            "xclass" => MethodKind::XClass,
            "lotclass" => MethodKind::LotClass,
            "prompt" => MethodKind::Prompt,
            "match" => MethodKind::Match,
            "westclass" => MethodKind::WeSTClass,
            "conwea" => MethodKind::ConWea,
            "supervised" => MethodKind::Supervised,
            _ => return None,
        })
    }

    /// The CLI-style name.
    pub fn name(&self) -> &'static str {
        match self {
            MethodKind::XClass => "xclass",
            MethodKind::LotClass => "lotclass",
            MethodKind::Prompt => "prompt",
            MethodKind::Match => "match",
            MethodKind::WeSTClass => "westclass",
            MethodKind::ConWea => "conwea",
            MethodKind::Supervised => "supervised",
        }
    }

    /// Whether the method yields a frozen per-document serving rule.
    /// Transductive methods (WeSTClass, ConWea) and the supervised upper
    /// bound only produce predictions for the corpus they were fitted on.
    pub fn servable(&self) -> bool {
        matches!(
            self,
            MethodKind::XClass | MethodKind::LotClass | MethodKind::Prompt | MethodKind::Match
        )
    }

    /// Whether fitting/serving needs a PLM at all.
    fn needs_plm(&self) -> bool {
        !matches!(self, MethodKind::WeSTClass)
    }
}

/// Where the engine's fit dataset comes from.
pub enum EngineSource {
    /// Raw label names (the CLI `classify` path): the engine fits on a
    /// fixed reference corpus drawn from the standard synthetic world, so
    /// the fitted rule is independent of the documents later classified.
    Labels(Vec<String>),
    /// A synthetic recipe by name (the CLI `demo` path).
    Recipe {
        /// Recipe name, e.g. `"agnews"`.
        name: String,
        /// Corpus scale factor.
        scale: f32,
        /// Generation seed.
        seed: u64,
    },
    /// An already-built dataset (the bench tables).
    Dataset(Box<Dataset>),
}

/// Which PLM the engine loads.
#[derive(Clone, Copy, Debug)]
pub enum PlmSpec {
    /// The shared pretrained model at a given tier.
    Pretrained(structmine_plm::cache::Tier),
    /// The standard PLM adapted to the fit dataset's corpus by continued
    /// MLM pretraining (honors `STRUCTMINE_PLM_TIER` / `_ADAPT_STEPS`).
    Adapted {
        /// Adaptation seed.
        seed: u64,
    },
}

/// Everything [`Engine::load`] needs.
pub struct EngineConfig {
    /// Fit dataset source.
    pub source: EngineSource,
    /// Hosted method.
    pub method: MethodKind,
    /// PLM to load.
    pub plm: PlmSpec,
    /// Method seed; `None` keeps each method's published default.
    pub seed: Option<u64>,
    /// Execution policy for encodes and scoring. Outputs are bitwise
    /// identical for any thread count; the policy's precision tier, by
    /// contrast, changes bits (Fast swaps in approximate inference
    /// kernels) and is therefore part of every inference stage
    /// fingerprint. Fitting/adaptation always runs Exact regardless.
    pub exec: ExecPolicy,
}

/// Engine-level failures; the CLI and serve map these onto their exit
/// taxonomies.
#[derive(Debug)]
pub enum EngineError {
    /// Dataset synthesis failed (unknown recipe, missing pool).
    Synth(SynthError),
    /// A label is unusable for the standard world.
    InvalidLabels(String),
    /// The method cannot serve new documents (transductive/fit-only).
    Unsupported {
        /// The offending method's CLI name.
        method: &'static str,
    },
    /// The requested accessor does not apply to the hosted method.
    WrongMethod {
        /// What was asked for.
        wanted: &'static str,
        /// The hosted method's CLI name.
        hosted: &'static str,
    },
    /// A method refused its input (wrong supervision kind, flat dataset
    /// fed to a hierarchical method, missing template word).
    Method(structmine::MethodError),
    /// A corpus delta was rejected (out of order, duplicate, bad tokens).
    Delta(DeltaError),
    /// The configured generation ceiling (`STRUCTMINE_GENERATION_LIMIT`)
    /// was reached; the corpus accepts no further deltas.
    GenerationLimit {
        /// The configured ceiling.
        limit: Generation,
    },
    /// An engine invariant broke — a bug or unsupported internal state,
    /// not a usage error. Servers map this onto HTTP 500; the CLI treats
    /// it as a persistent failure.
    Internal {
        /// What went wrong.
        what: String,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Synth(e) => write!(f, "{e}"),
            EngineError::InvalidLabels(msg) => write!(f, "{msg}"),
            EngineError::Unsupported { method } => write!(
                f,
                "method {method} is transductive (predicts only its fit corpus) \
                 and cannot classify new documents; \
                 use one of: xclass, lotclass, prompt, match"
            ),
            EngineError::WrongMethod { wanted, hosted } => {
                write!(
                    f,
                    "{wanted} is only available for engines hosting it \
                           (this engine hosts {hosted})"
                )
            }
            EngineError::Method(e) => write!(f, "{e}"),
            EngineError::Delta(e) => write!(f, "{e}"),
            EngineError::GenerationLimit { limit } => write!(
                f,
                "generation limit {limit} reached (STRUCTMINE_GENERATION_LIMIT); \
                 no further deltas accepted"
            ),
            EngineError::Internal { what } => write!(f, "internal engine error: {what}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<SynthError> for EngineError {
    fn from(e: SynthError) -> Self {
        EngineError::Synth(e)
    }
}

impl From<structmine::MethodError> for EngineError {
    fn from(e: structmine::MethodError) -> Self {
        EngineError::Method(e)
    }
}

/// The receipt of one accepted ingest delta.
#[derive(Clone, Debug)]
pub struct Ingested {
    /// The generation the corpus reached by applying the delta.
    pub generation: Generation,
    /// Predictions for the delta's documents, in input order — computed
    /// from the delta's freshly appended doc reps, byte-identical to
    /// [`Engine::classify`] on the same lines.
    pub predictions: Vec<Prediction>,
}

/// One document's classification.
#[derive(Clone, Debug, PartialEq)]
pub struct Prediction {
    /// Predicted class index (into [`Engine::labels`]).
    pub class: usize,
    /// Predicted label name.
    pub label: String,
    /// The winning class's probability under the method's per-document
    /// distribution.
    pub confidence: f32,
}

/// Why a document was classified the way it was.
#[derive(Clone, Debug)]
pub struct Explanation {
    /// The document's in-vocabulary words, in order (truncated to the
    /// PLM's context window where applicable).
    pub tokens: Vec<String>,
    /// Per-class probabilities, `(label, probability)`.
    pub probabilities: Vec<(String, f32)>,
    /// Per-token salience aligned with `tokens` (X-Class attention
    /// weights); empty when the method has no per-token story.
    pub token_weights: Vec<f32>,
}

/// The sharpening factor applied to raw per-class scores (prompt scores,
/// prototype cosines) before softmax — the same constant PromptClass uses
/// to turn scores into a usable distribution.
const SCORE_SHARPNESS: f32 = 24.0;

/// The fitted per-document serving rule.
enum ServeModel {
    XClass(XClassModel),
    LotClass(LotClassModel),
    /// RTD prompting needs no fitting: scores come straight from the PLM.
    Prompt,
    Match {
        /// Label-name prototype representations (`k x d_model`).
        prototypes: Matrix,
    },
}

/// The engine's streaming state: the generational corpus (base = the fit
/// dataset's corpus) plus the predictions made for every ingested document.
/// Built lazily on the first [`Engine::ingest`]; the serving rule itself
/// stays frozen on the generation-0 fit, so `classify` output is unaffected
/// by ingestion.
struct IngestState {
    delta: DeltaCorpus,
    preds: Vec<Prediction>,
}

/// A loaded classification engine: dataset + PLM + lazily fitted models.
///
/// `Engine` is `Send + Sync`; clones of the fitted state are shared via
/// `Arc`, so concurrent `classify` calls after warm-up never contend.
pub struct Engine {
    method: MethodKind,
    dataset: Dataset,
    plm: Option<Arc<MiniPlm>>,
    exec: ExecPolicy,
    seed: Option<u64>,
    name_tokens: Vec<Vec<TokenId>>,
    model: Mutex<Option<Arc<ServeModel>>>,
    xout: Mutex<Option<Arc<XClassOutput>>>,
    preds: Mutex<Option<Arc<Vec<usize>>>>,
    ingest: Mutex<Option<IngestState>>,
}

impl Engine {
    /// Load the engine: resolve the fit dataset and the PLM through the
    /// artifact store. Model fitting is deferred to first use (or
    /// [`Engine::warm`]).
    pub fn load(config: EngineConfig) -> Result<Engine, EngineError> {
        let dataset = match config.source {
            EngineSource::Labels(labels) => labels_dataset(&labels)?,
            EngineSource::Recipe { name, scale, seed } => {
                structmine_text::synth::by_name(&name, scale, seed)?
            }
            EngineSource::Dataset(d) => *d,
        };
        let plm = if config.method.needs_plm() {
            Some(match config.plm {
                PlmSpec::Pretrained(tier) => structmine_plm::cache::pretrained(tier, 0),
                PlmSpec::Adapted { seed } => loaders::adapted_plm(&dataset, seed),
            })
        } else {
            None
        };
        if let Some(plm) = &plm {
            // Pack every inference weight now so no serving request — not
            // even the first — pays the per-call panel pack. Idempotent:
            // an already-packed PLM shared through the Arc just hits its
            // caches.
            plm.prepack_weights();
        }
        let name_tokens = dataset.label_name_tokens();
        Ok(Engine {
            method: config.method,
            dataset,
            plm,
            exec: config.exec,
            seed: config.seed,
            name_tokens,
            model: Mutex::new(None),
            xout: Mutex::new(None),
            preds: Mutex::new(None),
            ingest: Mutex::new(None),
        })
    }

    /// The hosted method.
    pub fn method(&self) -> MethodKind {
        self.method
    }

    /// The inference precision tier this engine serves at.
    pub fn precision(&self) -> Precision {
        self.exec.precision()
    }

    /// A twin of this engine serving at `precision`: it shares the fit
    /// dataset and the loaded PLM (cheap — the PLM is behind an `Arc`),
    /// but fits its serving models fresh under the new tier. Ingest state
    /// is not carried over. This is how the tolerance harness puts an
    /// Exact and a Fast rule side by side without loading twice.
    pub fn at_precision(&self, precision: Precision) -> Engine {
        if let Some(plm) = &self.plm {
            // Normally a warm no-op (load() already packed); covers PLMs
            // whose weights changed since, so the twin serves pack-free too.
            plm.prepack_weights();
        }
        Engine {
            method: self.method,
            dataset: self.dataset.clone(),
            plm: self.plm.clone(),
            exec: self.exec.with_precision(precision),
            seed: self.seed,
            name_tokens: self.name_tokens.clone(),
            model: Mutex::new(None),
            xout: Mutex::new(None),
            preds: Mutex::new(None),
            ingest: Mutex::new(None),
        }
    }

    /// The label names documents are classified into.
    pub fn labels(&self) -> &[String] {
        &self.dataset.labels.names
    }

    /// The fit dataset.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// Force the serving model to fit now (servers call this before
    /// accepting traffic so the first request doesn't pay the fit).
    pub fn warm(&self) -> Result<(), EngineError> {
        self.serve_model().map(|_| ())
    }

    /// Classify a batch of raw text documents with the frozen per-document
    /// rule. The prediction for a document is byte-identical whether it
    /// arrives alone, in any batch, at any thread count.
    pub fn classify(&self, lines: &[String]) -> Result<Vec<Prediction>, EngineError> {
        let probs = self.classify_proba(lines)?;
        Ok(probs.into_iter().map(|p| self.to_prediction(&p)).collect())
    }

    /// Per-class probability rows for a batch of raw text documents.
    pub fn classify_proba(&self, lines: &[String]) -> Result<Vec<Vec<f32>>, EngineError> {
        let _stage = structmine_store::context::stage_guard("engine/classify");
        let model = self.serve_model()?;
        let docs: Vec<Vec<TokenId>> = lines.iter().map(|l| self.tokenize(l)).collect();
        self.proba_for_tokens(&model, &docs)
    }

    /// The corpus's current generation (0 until the first ingest).
    pub fn generation(&self) -> Generation {
        self.ingest
            .lock()
            .as_ref()
            .map_or(0, |s| s.delta.generation())
    }

    /// Predictions for every document ingested so far, in stream order.
    pub fn ingested_predictions(&self) -> Vec<Prediction> {
        self.ingest
            .lock()
            .as_ref()
            .map_or_else(Vec::new, |s| s.preds.clone())
    }

    /// Ingest a batch of raw text documents as the corpus's next
    /// generation and classify them.
    ///
    /// The documents are tokenized against the frozen fit vocabulary (the
    /// same closed-vocabulary path `classify` uses) and appended as a
    /// [`DeltaCorpus`] delta; corpus statistics update incrementally. The
    /// new documents are then encoded through the generation-keyed
    /// [`EncodeDeltaCorpus`] stage — a warm store re-encodes **only** this
    /// delta's docs, reusing every earlier generation — and classified with
    /// the frozen serving rule, reusing those freshly appended reps. The
    /// serving rule itself never refits, so `classify` output is unchanged
    /// by ingestion and each returned prediction is byte-identical to
    /// `classify` on the same line.
    pub fn ingest(&self, lines: &[String]) -> Result<Ingested, EngineError> {
        let _stage = structmine_store::context::stage_guard("engine/ingest");
        let model = self.serve_model()?; // transductive methods refuse here
        let mut slot = self.ingest.lock();
        let st = slot.get_or_insert_with(|| IngestState {
            delta: DeltaCorpus::from_corpus(self.dataset.corpus.clone()),
            preds: Vec::new(),
        });
        if let Some(limit) = generation_limit() {
            if st.delta.generation() >= limit {
                return Err(EngineError::GenerationLimit { limit });
            }
        }
        let docs: Vec<Doc> = lines
            .iter()
            .map(|l| Doc::from_tokens(self.tokenize(l)))
            .collect();
        let delta = st.delta.next_delta(docs);
        let generation = st.delta.apply(delta).map_err(EngineError::Delta)?;
        let range = st.delta.gen_range(generation);

        let probs: Vec<Vec<f32>> = match &*model {
            // Prompting scores straight from tokens; no doc reps to refresh.
            ServeModel::Prompt => {
                let toks: Vec<Vec<TokenId>> = st.delta.corpus().docs[range]
                    .iter()
                    .map(|d| d.tokens.clone())
                    .collect();
                self.proba_for_tokens(&model, &toks)?
            }
            _ => {
                let reps = structmine_store::global().run_delta(&EncodeDeltaCorpus {
                    model: self.plm_ref()?.as_ref(),
                    delta: &st.delta,
                    exec: self.exec,
                });
                let fresh = &reps[range];
                match &*model {
                    ServeModel::XClass(m) => {
                        fresh.iter().map(|r| m.predict_proba(&r.tokens)).collect()
                    }
                    ServeModel::LotClass(m) => {
                        fresh.iter().map(|r| m.predict_proba(&r.mean)).collect()
                    }
                    ServeModel::Match { prototypes } => fresh
                        .iter()
                        .map(|r| {
                            let scores: Vec<f32> = (0..prototypes.rows())
                                .map(|c| vector::cosine(&r.mean, prototypes.row(c)))
                                .collect();
                            sharpened_softmax(scores)
                        })
                        .collect(),
                    ServeModel::Prompt => {
                        return Err(EngineError::Internal {
                            what: "prompt rule reached the rep-based ingest path".into(),
                        })
                    }
                }
            }
        };
        let predictions: Vec<Prediction> = probs.iter().map(|p| self.to_prediction(p)).collect();
        st.preds.extend(predictions.iter().cloned());
        structmine_store::obs::counter_add("engine.generation", 1);
        structmine_store::obs::counter_add("engine.ingested_docs", lines.len() as u64);
        Ok(Ingested {
            generation,
            predictions,
        })
    }

    /// Explain one document: per-class probabilities plus per-token
    /// salience where the method has one (X-Class attention).
    pub fn explain(&self, line: &str) -> Result<Explanation, EngineError> {
        let model = self.serve_model()?;
        let tokens = self.tokenize(line);
        let mut words: Vec<String> = tokens
            .iter()
            .map(|&t| self.dataset.corpus.vocab.word(t).to_string())
            .collect();
        let mut token_weights = Vec::new();
        let probs = match &*model {
            ServeModel::XClass(m) => {
                let plm = self.plm_ref()?;
                let rep = &plm.encode_docs(std::slice::from_ref(&tokens), &self.exec)[0];
                if rep.tokens.rows() > 0 {
                    token_weights = m.attention(&rep.tokens);
                }
                // The encode truncates to the PLM's context window; keep
                // the word list aligned with the weights.
                words.truncate(rep.tokens.rows());
                m.predict_proba(&rep.tokens)
            }
            _ => self
                .proba_for_tokens(&model, std::slice::from_ref(&tokens))?
                .remove(0),
        };
        let probabilities = self
            .labels()
            .iter()
            .cloned()
            .zip(probs.iter().copied())
            .collect();
        Ok(Explanation {
            tokens: words,
            probabilities,
            token_weights,
        })
    }

    /// The method's predictions for the *fit* dataset — exactly what the
    /// method's memoized `run` pipeline has always produced, so bench
    /// tables keep their bytes. Computed once and cached.
    pub fn fitted_predictions(&self) -> Result<Arc<Vec<usize>>, EngineError> {
        if let Some(p) = self.preds.lock().as_ref() {
            return Ok(Arc::clone(p));
        }
        let d = &self.dataset;
        let preds = match self.method {
            MethodKind::XClass => self.xclass_output()?.predictions.clone(),
            MethodKind::LotClass => {
                let mut cfg = LotClass {
                    exec: self.exec,
                    ..Default::default()
                };
                if let Some(s) = self.seed {
                    cfg.seed = s;
                }
                cfg.run(d, self.plm_ref()?).predictions
            }
            MethodKind::Prompt => {
                let mut cfg = PromptClass {
                    exec: self.exec,
                    ..Default::default()
                };
                if let Some(s) = self.seed {
                    cfg.seed = s;
                }
                cfg.run(d, self.plm_ref()?)?.predictions
            }
            MethodKind::Match => baselines::bert_simple_match(d, self.plm_ref()?),
            MethodKind::WeSTClass => {
                let wv = loaders::standard_word_vectors(d);
                let mut cfg = WeSTClass {
                    exec: self.exec,
                    ..Default::default()
                };
                if let Some(s) = self.seed {
                    cfg.seed = s;
                }
                cfg.run(d, &d.supervision_names(), &wv).predictions
            }
            MethodKind::ConWea => {
                let mut cfg = ConWea {
                    exec: self.exec,
                    ..Default::default()
                };
                if let Some(s) = self.seed {
                    cfg.seed = s;
                }
                cfg.run(d, &d.supervision_keywords(), self.plm_ref()?)
                    .predictions
            }
            MethodKind::Supervised => {
                let features = common::plm_features_with(d, self.plm_ref()?, &self.exec);
                baselines::supervised(d, &features, self.seed.unwrap_or(0))
            }
        };
        let preds = Arc::new(preds);
        *self.preds.lock() = Some(Arc::clone(&preds));
        Ok(preds)
    }

    /// The full X-Class output (final, -Rep, and -Align predictions) for
    /// the fit dataset — the bench tables' ablation rows. Errors unless
    /// this engine hosts X-Class. Computed once and cached.
    pub fn xclass_output(&self) -> Result<Arc<XClassOutput>, EngineError> {
        if self.method != MethodKind::XClass {
            return Err(EngineError::WrongMethod {
                wanted: "xclass_output",
                hosted: self.method.name(),
            });
        }
        if let Some(out) = self.xout.lock().as_ref() {
            return Ok(Arc::clone(out));
        }
        let out = Arc::new(self.xclass_config().run(&self.dataset, self.plm_ref()?));
        *self.xout.lock() = Some(Arc::clone(&out));
        Ok(out)
    }

    /// Compute (and persist) one shard of the fit corpus's mean-rep matrix
    /// (DESIGN §12): the [`DocMeanRepsShard`] stage for this worker's
    /// index-ordered document range, run through the shared artifact store.
    /// The artifact is content-addressed on the range, so a restarted
    /// worker resumes from whatever its previous incarnation published.
    pub fn shard_encode(&self, shard_index: usize, shard_count: usize) -> Result<(), EngineError> {
        let plm = self.plm_ref()?;
        let range = self.checked_range(shard_index, shard_count)?;
        structmine_store::global().run(&DocMeanRepsShard {
            model: plm.as_ref(),
            corpus: &self.dataset.corpus,
            range,
            // Shard encoding pre-computes the *fit* corpus reps, and
            // fitting always runs Exact — publish under the key the fit
            // will read, whatever tier this engine serves queries at.
            exec: self.fit_exec(),
        });
        Ok(())
    }

    /// Merge the `shard_count` shard artifacts in index order and publish
    /// the result under the canonical [`DocMeanReps`] key. Because every
    /// row is a per-document computation, the merged matrix is bitwise
    /// identical to an unsharded run — downstream consumers (method fits,
    /// bench tables) find it warm and cannot tell the difference.
    pub fn shard_merge(&self, shard_count: usize) -> Result<(), EngineError> {
        if shard_count == 0 {
            return Err(EngineError::Internal {
                what: "cannot merge zero shards".into(),
            });
        }
        let plm = self.plm_ref()?;
        let corpus = &self.dataset.corpus;
        let store = structmine_store::global();
        let mut rows: Vec<Vec<f32>> = Vec::with_capacity(corpus.len());
        for index in 0..shard_count {
            let range = self.checked_range(index, shard_count)?;
            let shard = store.run(&DocMeanRepsShard {
                model: plm.as_ref(),
                corpus,
                range,
                exec: self.fit_exec(),
            });
            rows.extend((0..shard.rows()).map(|r| shard.row(r).to_vec()));
        }
        let merged = structmine_plm::repr::rows_to_matrix(rows, plm.config.d_model);
        store.publish(
            &DocMeanReps {
                model: plm.as_ref(),
                corpus,
                // Same key the Exact fit computes and reads (see
                // `shard_encode`).
                exec: self.fit_exec(),
            },
            merged,
        );
        Ok(())
    }

    fn checked_range(
        &self,
        index: usize,
        count: usize,
    ) -> Result<std::ops::Range<usize>, EngineError> {
        if count == 0 || index >= count {
            return Err(EngineError::Internal {
                what: format!("shard {index} of {count} is out of range"),
            });
        }
        Ok(shard_range(self.dataset.corpus.len(), index, count))
    }

    /// The policy the serving-rule fit runs under: the engine's thread
    /// count, but always Exact precision (fitting is adaptation).
    fn fit_exec(&self) -> structmine_linalg::ExecPolicy {
        self.exec.with_precision(Precision::Exact)
    }

    fn plm_ref(&self) -> Result<&Arc<MiniPlm>, EngineError> {
        self.plm.as_ref().ok_or_else(|| EngineError::Internal {
            what: "the hosted method reached for the PLM but none was loaded".into(),
        })
    }

    fn xclass_config(&self) -> XClass {
        let mut cfg = XClass {
            exec: self.exec,
            ..Default::default()
        };
        if let Some(s) = self.seed {
            cfg.seed = s;
        }
        cfg
    }

    fn tokenize(&self, line: &str) -> Vec<TokenId> {
        structmine_text::tokenize::encode(line, &self.dataset.corpus.vocab)
            .into_iter()
            .filter(|&t| t != structmine_text::vocab::UNK)
            .collect()
    }

    fn to_prediction(&self, probs: &[f32]) -> Prediction {
        let class = vector::argmax(probs).unwrap_or(0);
        Prediction {
            class,
            label: self.dataset.labels.names[class].clone(),
            confidence: probs.get(class).copied().unwrap_or(0.0),
        }
    }

    /// Fit (once) and return the serving rule.
    ///
    /// Fitting is *adaptation*, and adaptation always runs Exact: the
    /// serving rule (pseudo-labels, cluster assignments, classifier
    /// weights) is bitwise identical across precision tiers, and the Fast
    /// tier applies only to query-time encoding. This keeps the tolerance
    /// harness's bounds attributable to the approximation itself instead
    /// of a chaotic fit cascade, and lets both tiers correctly share the
    /// fit's cached artifacts (they are the same computation).
    fn serve_model(&self) -> Result<Arc<ServeModel>, EngineError> {
        let mut slot = self.model.lock();
        if let Some(m) = slot.as_ref() {
            return Ok(Arc::clone(m));
        }
        let fit_exec = self.fit_exec();
        let model = match self.method {
            MethodKind::XClass => {
                let mut cfg = self.xclass_config();
                cfg.exec = fit_exec;
                ServeModel::XClass(cfg.fit_model(&self.dataset, self.plm_ref()?))
            }
            MethodKind::LotClass => {
                let mut cfg = LotClass {
                    exec: fit_exec,
                    ..Default::default()
                };
                if let Some(s) = self.seed {
                    cfg.seed = s;
                }
                ServeModel::LotClass(cfg.fit_model(&self.dataset, self.plm_ref()?))
            }
            MethodKind::Prompt => ServeModel::Prompt,
            MethodKind::Match => {
                let plm = self.plm_ref()?;
                let mut prototypes = Matrix::zeros(self.name_tokens.len(), plm.config.d_model);
                for (c, name) in self.name_tokens.iter().enumerate() {
                    prototypes.row_mut(c).copy_from_slice(&plm.mean_embed(name));
                }
                ServeModel::Match { prototypes }
            }
            MethodKind::WeSTClass | MethodKind::ConWea | MethodKind::Supervised => {
                return Err(EngineError::Unsupported {
                    method: self.method.name(),
                })
            }
        };
        let model = Arc::new(model);
        *slot = Some(Arc::clone(&model));
        Ok(model)
    }

    /// Per-document probability rows for already-tokenized documents.
    /// Every branch applies an independent per-document rule via
    /// index-ordered chunking, so the rows are bitwise independent of
    /// batch composition and thread count.
    fn proba_for_tokens(
        &self,
        model: &ServeModel,
        docs: &[Vec<TokenId>],
    ) -> Result<Vec<Vec<f32>>, EngineError> {
        Ok(match model {
            ServeModel::XClass(m) => {
                let reps = self.plm_ref()?.encode_docs(docs, &self.exec);
                reps.iter().map(|r| m.predict_proba(&r.tokens)).collect()
            }
            ServeModel::LotClass(m) => {
                let plm = self.plm_ref()?;
                let prec = self.exec.precision();
                par_map_chunks(&self.exec, docs, |_, toks| {
                    m.predict_proba(&plm.mean_embed_prec(toks, prec))
                })
            }
            ServeModel::Prompt => {
                let plm = self.plm_ref()?;
                let vocab = &self.dataset.corpus.vocab;
                let prec = self.exec.precision();
                // A missing template word is per-vocabulary, not
                // per-document: surface it once, before fanning out.
                structmine_plm::prompt::validate_templates(vocab).map_err(|e| {
                    EngineError::Internal {
                        what: e.to_string(),
                    }
                })?;
                let n_classes = self.name_tokens.len();
                par_map_chunks(&self.exec, docs, |_, toks| {
                    sharpened_softmax(
                        structmine_plm::prompt::rtd_label_scores_prec(
                            plm,
                            toks,
                            &self.name_tokens,
                            vocab,
                            prec,
                        )
                        // Unreachable: templates were validated above.
                        .unwrap_or_else(|_| vec![0.0; n_classes]),
                    )
                })
            }
            ServeModel::Match { prototypes } => {
                let plm = self.plm_ref()?;
                let prec = self.exec.precision();
                par_map_chunks(&self.exec, docs, |_, toks| {
                    let rep = plm.mean_embed_prec(toks, prec);
                    let scores: Vec<f32> = (0..prototypes.rows())
                        .map(|c| vector::cosine(&rep, prototypes.row(c)))
                        .collect();
                    sharpened_softmax(scores)
                })
            }
        })
    }
}

/// The optional generation ceiling: `STRUCTMINE_GENERATION_LIMIT=<n>`
/// caps how many ingest deltas an engine accepts (malformed values are
/// ignored). Unset means unlimited.
fn generation_limit() -> Option<Generation> {
    std::env::var("STRUCTMINE_GENERATION_LIMIT")
        .ok()
        .and_then(|v| v.trim().parse().ok())
}

/// Turn raw per-class scores into a probability row, with the same
/// sharpening PromptClass applies before its softmax.
fn sharpened_softmax(mut scores: Vec<f32>) -> Vec<f32> {
    for s in &mut scores {
        *s *= SCORE_SHARPNESS;
    }
    stats::softmax_inplace(&mut scores);
    scores
}

/// Format one classified line the way both the CLI and the server emit it:
/// `label<TAB>confidence<TAB>document`. Serving responses byte-match CLI
/// output because both go through this one function.
pub fn format_prediction_line(pred: &Prediction, line: &str) -> String {
    format!("{}\t{:.6}\t{}", pred.label, pred.confidence, line)
}

/// Build the fixed fit dataset for an [`EngineSource::Labels`] engine: a
/// reference corpus from the standard synthetic world (the same world the
/// shared PLM pretrained on), labeled only by the given names.
fn labels_dataset(labels: &[String]) -> Result<Dataset, EngineError> {
    if labels.len() < 2 {
        return Err(EngineError::InvalidLabels(
            "need at least two labels".into(),
        ));
    }
    let mut corpus = structmine_text::synth::pretraining_corpus(200, 17);
    for doc in &mut corpus.docs {
        if doc.labels.is_empty() {
            doc.labels = vec![0]; // placeholder; gold labels are unknown
        }
    }
    let name_tokens: Vec<Vec<TokenId>> = labels
        .iter()
        .map(|l| {
            structmine_text::tokenize::encode(l, &corpus.vocab)
                .into_iter()
                .filter(|&t| t != structmine_text::vocab::UNK)
                .collect()
        })
        .collect();
    if name_tokens.iter().any(|t| t.is_empty()) {
        return Err(EngineError::InvalidLabels(
            "every label must contain at least one standard-world word \
             (try e.g. sports, business, technology, politics, health)"
                .into(),
        ));
    }
    let n = corpus.len();
    Ok(Dataset {
        name: "labels".into(),
        corpus,
        labels: structmine_text::LabelSet {
            names: labels.to_vec(),
            name_words: labels.iter().map(|l| vec![l.clone()]).collect(),
            keywords: labels.iter().map(|l| vec![l.clone()]).collect(),
            descriptions: labels
                .iter()
                .map(|l| format!("category about {l}"))
                .collect(),
        },
        taxonomy: None,
        class_nodes: vec![],
        train_idx: (0..n).collect(),
        test_idx: vec![],
        meta: Default::default(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_engine(method: MethodKind) -> Engine {
        Engine::load(EngineConfig {
            source: EngineSource::Labels(vec![
                "sports".into(),
                "business".into(),
                "technology".into(),
            ]),
            method,
            plm: PlmSpec::Pretrained(structmine_plm::cache::Tier::Test),
            seed: None,
            exec: ExecPolicy::default(),
        })
        .unwrap()
    }

    #[test]
    fn labels_engine_classifies_with_confidence() {
        let engine = test_engine(MethodKind::Match);
        let lines = vec![
            "the team won the game in the final match".to_string(),
            "the company reported strong market earnings".to_string(),
        ];
        let preds = engine.classify(&lines).unwrap();
        assert_eq!(preds.len(), 2);
        for p in &preds {
            assert!(p.class < 3);
            assert!(p.confidence > 0.0 && p.confidence <= 1.0);
            assert_eq!(p.label, engine.labels()[p.class]);
        }
    }

    #[test]
    fn invalid_label_is_rejected_with_guidance() {
        let err = Engine::load(EngineConfig {
            source: EngineSource::Labels(vec!["sports".into(), "zzzzqqq".into()]),
            method: MethodKind::Match,
            plm: PlmSpec::Pretrained(structmine_plm::cache::Tier::Test),
            seed: None,
            exec: ExecPolicy::default(),
        })
        .err()
        .unwrap();
        assert!(err.to_string().contains("standard-world word"));
    }

    #[test]
    fn transductive_methods_refuse_to_serve() {
        let engine = Engine::load(EngineConfig {
            source: EngineSource::Recipe {
                name: "agnews".into(),
                scale: 0.05,
                seed: 1,
            },
            method: MethodKind::WeSTClass,
            plm: PlmSpec::Pretrained(structmine_plm::cache::Tier::Test),
            seed: None,
            exec: ExecPolicy::default(),
        })
        .unwrap();
        let err = engine
            .classify(&["some document".to_string()])
            .err()
            .unwrap();
        assert!(matches!(
            err,
            EngineError::Unsupported {
                method: "westclass"
            }
        ));
    }

    #[test]
    fn explain_aligns_tokens_and_weights_for_xclass() {
        let engine = test_engine(MethodKind::XClass);
        let ex = engine
            .explain("the team won the championship game")
            .unwrap();
        assert_eq!(ex.tokens.len(), ex.token_weights.len());
        assert_eq!(ex.probabilities.len(), 3);
        let total: f32 = ex.token_weights.iter().sum();
        assert!((total - 1.0).abs() < 1e-4, "attention sums to {total}");
    }

    fn test_engine_threads(method: MethodKind, threads: usize) -> Engine {
        Engine::load(EngineConfig {
            source: EngineSource::Labels(vec![
                "sports".into(),
                "business".into(),
                "technology".into(),
            ]),
            method,
            plm: PlmSpec::Pretrained(structmine_plm::cache::Tier::Test),
            seed: None,
            exec: ExecPolicy::with_threads(threads),
        })
        .unwrap()
    }

    fn stream_lines() -> Vec<String> {
        vec![
            "the team won the game in the final match".to_string(),
            "the company reported strong market earnings".to_string(),
            "the new software system runs on every computer".to_string(),
            "the coach praised the players after the season".to_string(),
        ]
    }

    #[test]
    fn ingest_predictions_match_classify_bitwise() {
        for method in [MethodKind::Match, MethodKind::XClass, MethodKind::Prompt] {
            let engine = test_engine(method);
            let lines = stream_lines();
            let classified = engine.classify(&lines).unwrap();
            let ingested = engine.ingest(&lines).unwrap();
            assert_eq!(ingested.generation, 1);
            assert_eq!(
                ingested.predictions,
                classified,
                "{} ingest diverged from classify",
                method.name()
            );
        }
    }

    #[test]
    fn k_ingests_equal_one_ingest_across_thread_counts() {
        let lines = stream_lines();
        // One engine takes the stream as two deltas, another as one; a
        // third runs at a different thread count. All predictions must be
        // byte-identical, and the generation counters must reflect the
        // split.
        let split = test_engine_threads(MethodKind::Match, 1);
        split.ingest(&lines[..2]).unwrap();
        split.ingest(&lines[2..]).unwrap();
        assert_eq!(split.generation(), 2);

        let whole = test_engine_threads(MethodKind::Match, 4);
        whole.ingest(&lines).unwrap();
        assert_eq!(whole.generation(), 1);

        assert_eq!(split.ingested_predictions(), whole.ingested_predictions());
        assert_eq!(
            whole.ingested_predictions(),
            whole.classify(&lines).unwrap()
        );
    }

    #[test]
    fn classify_is_unchanged_by_ingestion() {
        let engine = test_engine(MethodKind::Match);
        let probe = vec!["the market rallied after the earnings report".to_string()];
        let before = engine.classify(&probe).unwrap();
        engine.ingest(&stream_lines()).unwrap();
        let after = engine.classify(&probe).unwrap();
        assert_eq!(before, after, "ingest must not move the serving rule");
    }

    #[test]
    fn generation_starts_at_zero_and_counts_deltas() {
        let engine = test_engine(MethodKind::Match);
        assert_eq!(engine.generation(), 0);
        assert!(engine.ingested_predictions().is_empty());
        engine.ingest(&stream_lines()[..1]).unwrap();
        assert_eq!(engine.generation(), 1);
        assert_eq!(engine.ingested_predictions().len(), 1);
    }

    #[test]
    fn shard_merge_publishes_the_canonical_matrix_bitwise() {
        let engine = test_engine(MethodKind::Match);
        for i in 0..3 {
            engine.shard_encode(i, 3).unwrap();
        }
        engine.shard_merge(3).unwrap();
        let plm = engine.plm_ref().unwrap();
        let stage = DocMeanReps {
            model: plm.as_ref(),
            corpus: &engine.dataset.corpus,
            exec: ExecPolicy::serial(),
        };
        use structmine_store::Stage as _;
        let published: Arc<Matrix> = structmine_store::global()
            .peek(&stage.key(), stage.persistence())
            .expect("merge must publish the canonical DocMeanReps artifact");
        assert_eq!(published.data(), stage.compute().data());
        assert!(engine.shard_encode(3, 3).is_err(), "index out of range");
        assert!(engine.shard_merge(0).is_err(), "zero shards is invalid");
    }

    #[test]
    fn format_line_is_stable() {
        let p = Prediction {
            class: 0,
            label: "sports".into(),
            confidence: 0.75,
        };
        assert_eq!(
            format_prediction_line(&p, "the game"),
            "sports\t0.750000\tthe game"
        );
    }
}
