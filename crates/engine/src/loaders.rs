//! Artifact loaders shared by every engine front-end: the standard and
//! corpus-adapted PLMs plus the harness's SGNS word vectors, each memoized
//! through the global artifact store so a warm load is sub-second.
//!
//! These used to live in `structmine-bench`; they moved here so the CLI,
//! the bench tables, and `structmine-serve` all warm the same artifacts
//! through one code path.

/// The standard pretrained PLM shared by all PLM-based experiments.
/// `STRUCTMINE_PLM_TIER=test` downgrades to the test tier for smoke and
/// fault-injection runs (any other value keeps the standard tier).
pub fn standard_plm() -> std::sync::Arc<structmine_plm::MiniPlm> {
    let tier = match std::env::var("STRUCTMINE_PLM_TIER") {
        Ok(v) if v.eq_ignore_ascii_case("test") => structmine_plm::cache::Tier::Test,
        _ => structmine_plm::cache::Tier::Standard,
    };
    structmine_plm::cache::pretrained(tier, 0)
}

/// A copy of the standard PLM *adapted to the dataset's corpus* by
/// continued MLM pretraining — the "further pretrain BERT on the task
/// corpus" step every method paper performs. The most expensive per-dataset
/// step in the harness, so its checkpoint goes through the artifact store's
/// disk layer (shared across processes and table binaries); the restored
/// model is additionally shared per (dataset, steps, seed) as an `Arc`
/// within the process.
pub fn adapted_plm(
    dataset: &structmine_text::Dataset,
    seed: u64,
) -> std::sync::Arc<structmine_plm::MiniPlm> {
    use parking_lot::Mutex;
    use std::sync::{Arc, OnceLock};
    type AdaptedCache = std::collections::HashMap<(u128, usize, u64), Arc<structmine_plm::MiniPlm>>;
    static CACHE: OnceLock<Mutex<AdaptedCache>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(std::collections::HashMap::new()));
    let steps = std::env::var("STRUCTMINE_ADAPT_STEPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(500);
    let key = (dataset.fingerprint(), steps, seed);
    if let Some(m) = cache.lock().get(&key) {
        return Arc::clone(m);
    }
    let base = standard_plm();
    let checkpoint = structmine_store::global().run(&structmine_plm::artifacts::AdaptPlm {
        base: &base,
        corpus: &dataset.corpus,
        steps,
        seed,
    });
    // The adapt stage is DiskOnly: each warm hit deserializes a fresh
    // checkpoint (refcount 1), so the weights move straight into the model.
    let adapted = Arc::new(match Arc::try_unwrap(checkpoint) {
        Ok(owned) => owned.into_model(),
        Err(shared) => shared.restore(),
    });
    cache.lock().insert(key, Arc::clone(&adapted));
    adapted
}

/// Stage: train the harness's standard SGNS word vectors on a dataset's
/// corpus (static-embedding methods).
struct TrainSgns<'a> {
    corpus: &'a structmine_text::Corpus,
    cfg: structmine_embed::SgnsConfig,
}

impl structmine_store::Stage for TrainSgns<'_> {
    type Output = structmine_embed::WordVectors;

    fn name(&self) -> &'static str {
        "embed/sgns-word-vectors"
    }

    fn fingerprint(&self, h: &mut structmine_store::StableHasher) {
        use structmine_store::StableHash;
        self.corpus.stable_hash(h);
        self.cfg.stable_hash(h);
    }

    fn compute(&self) -> structmine_embed::WordVectors {
        structmine_embed::Sgns::train(self.corpus, &self.cfg)
    }
}

/// Train standard word vectors on a dataset (static-embedding methods),
/// memoized through the global artifact store.
pub fn standard_word_vectors(dataset: &structmine_text::Dataset) -> structmine_embed::WordVectors {
    let stage = TrainSgns {
        corpus: &dataset.corpus,
        cfg: structmine_embed::SgnsConfig {
            epochs: 4,
            dim: 32,
            ..Default::default()
        },
    };
    (*structmine_store::global().run(&stage)).clone()
}
