//! The accuracy-tolerance harness, exercised as a property across every
//! servable method and several seeds (DESIGN §13): the Fast tier's
//! approximate kernels must agree with Exact on at least
//! [`MIN_AGREEMENT`](structmine_engine::tolerance::MIN_AGREEMENT) of the
//! eval split's labels, with every winning-class confidence within
//! [`MAX_CONFIDENCE_DELTA`](structmine_engine::tolerance::MAX_CONFIDENCE_DELTA).
//! A kernel change that quietly degrades the approximation fails here as a
//! measured label-flip rate, not as a perf-note surprise.
//!
//! Also pinned: the Fast tier keeps the batching-invariance contract the
//! micro-batcher relies on — approximate arithmetic is still deterministic
//! and per-document, so splitting a batch cannot change a single bit.

use structmine_engine::tolerance::{self, ToleranceReport};
use structmine_engine::{Engine, EngineConfig, EngineSource, MethodKind, PlmSpec};
use structmine_linalg::{ExecPolicy, Precision};

fn load_fast(method: MethodKind, seed: u64) -> Engine {
    Engine::load(EngineConfig {
        source: EngineSource::Labels(
            ["sports", "business", "technology"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
        ),
        method,
        plm: PlmSpec::Pretrained(structmine_plm::cache::Tier::Test),
        seed: Some(seed),
        exec: ExecPolicy::with_threads(1).with_precision(Precision::Fast),
    })
    .expect("engine loads")
}

/// The property: for every seed, the Fast engine's startup self-check
/// (Exact twin vs Fast over the whole eval split) stays inside the
/// published bounds.
fn check_within_bounds(method: MethodKind) {
    for seed in [3u64, 11, 42] {
        let fast = load_fast(method, seed);
        let report = tolerance::self_check(&fast).expect("self-check runs");
        assert!(report.n > 0, "{method:?} seed {seed}: empty eval split");
        assert!(
            report.within_bounds(),
            "{method:?} seed {seed} out of tolerance: {}",
            report.summary()
        );
    }
}

#[test]
fn match_fast_tier_is_within_tolerance_across_seeds() {
    check_within_bounds(MethodKind::Match);
}

#[test]
fn xclass_fast_tier_is_within_tolerance_across_seeds() {
    check_within_bounds(MethodKind::XClass);
}

#[test]
fn lotclass_fast_tier_is_within_tolerance_across_seeds() {
    check_within_bounds(MethodKind::LotClass);
}

#[test]
fn prompt_fast_tier_is_within_tolerance_across_seeds() {
    check_within_bounds(MethodKind::Prompt);
}

/// The serve batcher's contract, on the Fast tier: classifying documents
/// in any split of a batch yields bitwise-identical predictions to the
/// whole batch at once.
#[test]
fn fast_tier_predictions_are_split_independent() {
    let fast = load_fast(MethodKind::XClass, 7);
    let lines = tolerance::eval_lines(&fast);
    assert!(lines.len() >= 4, "need a few docs to split");
    let whole = fast.classify(&lines).expect("classify whole");

    for cut in [1, lines.len() / 2, lines.len() - 1] {
        let (a, b) = lines.split_at(cut);
        let mut split = fast.classify(a).expect("classify head");
        split.extend(fast.classify(b).expect("classify tail"));
        assert_eq!(whole.len(), split.len());
        for (i, (w, s)) in whole.iter().zip(&split).enumerate() {
            assert_eq!(w.label, s.label, "label differs at doc {i}, cut {cut}");
            assert_eq!(
                w.confidence.to_bits(),
                s.confidence.to_bits(),
                "confidence bits differ at doc {i}, cut {cut}"
            );
        }
    }
}

#[test]
fn exact_tier_self_check_is_trivially_in_bounds() {
    let exact = load_fast(MethodKind::Match, 1).at_precision(Precision::Exact);
    let report = tolerance::self_check(&exact).expect("self-check runs");
    assert_eq!(
        report,
        ToleranceReport {
            n: 0,
            agreement: 1.0,
            max_confidence_delta: 0.0
        },
        "an Exact engine needs no comparison"
    );
}

#[test]
fn compare_on_no_documents_has_nothing_to_disagree_about() {
    let fast = load_fast(MethodKind::Match, 2);
    let exact = fast.at_precision(Precision::Exact);
    let report = tolerance::compare(&exact, &fast, &[]).expect("empty compare");
    assert_eq!(report.n, 0);
    assert!(report.within_bounds());
}
