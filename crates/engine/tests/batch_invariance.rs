//! Batching invariance: a document's prediction from `Engine::classify` is
//! byte-identical whether the document is classified alone, in any batch,
//! in any partition of a batch, at any thread count.
//!
//! This is the contract `structmine-serve`'s micro-batcher relies on to
//! coalesce concurrent requests: flushing N queued requests as one
//! `classify` call must produce exactly the bytes each request would have
//! gotten alone. Confidences are compared via `f32::to_bits` — bitwise,
//! not approximately.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use structmine_engine::{Engine, EngineConfig, EngineSource, MethodKind, PlmSpec, Prediction};
use structmine_linalg::ExecPolicy;

const WORDS: &[&str] = &[
    "striker",
    "goal",
    "keeper",
    "match",
    "coach",
    "market",
    "stock",
    "company",
    "earnings",
    "investor",
    "senator",
    "election",
    "campaign",
    "debate",
    "processor",
    "chip",
    "software",
    "device",
    "vaccine",
    "doctor",
    "the",
    "a",
    "won",
    "fell",
];

fn random_docs(rng: &mut StdRng, n: usize) -> Vec<String> {
    (0..n)
        .map(|_| {
            let len = rng.gen_range(3..12);
            (0..len)
                .map(|_| WORDS[rng.gen_range(0..WORDS.len())])
                .collect::<Vec<_>>()
                .join(" ")
        })
        .collect()
}

/// Split `docs` at random cut points into 1..=4 consecutive chunks.
fn random_partition(rng: &mut StdRng, n: usize) -> Vec<std::ops::Range<usize>> {
    let pieces = rng.gen_range(1..5.min(n + 1));
    let mut cuts: Vec<usize> = (0..pieces - 1).map(|_| rng.gen_range(1..n)).collect();
    cuts.push(0);
    cuts.push(n);
    cuts.sort_unstable();
    cuts.windows(2).map(|w| w[0]..w[1]).collect()
}

fn load(method: MethodKind, threads: usize) -> Engine {
    Engine::load(EngineConfig {
        source: EngineSource::Labels(
            ["sports", "business", "politics", "technology"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
        ),
        method,
        plm: PlmSpec::Pretrained(structmine_plm::cache::Tier::Test),
        seed: None,
        exec: ExecPolicy::with_threads(threads),
    })
    .expect("engine loads")
}

fn assert_bitwise_eq(a: &Prediction, b: &Prediction, context: &str) {
    assert_eq!(a.label, b.label, "label differs: {context}");
    assert_eq!(
        a.confidence.to_bits(),
        b.confidence.to_bits(),
        "confidence bits differ ({} vs {}): {context}",
        a.confidence,
        b.confidence
    );
}

fn check_invariance(method: MethodKind) {
    let mut rng = StdRng::seed_from_u64(0xBA7C4);
    let engines: Vec<(usize, Engine)> = [1usize, 4].iter().map(|&t| (t, load(method, t))).collect();
    // The 1-thread engine classifying one document at a time is the
    // reference everything else must match bitwise.
    let (_, reference) = &engines[0];

    for round in 0..6 {
        let n = rng.gen_range(2..10);
        let docs = random_docs(&mut rng, n);
        let singles: Vec<Prediction> = docs
            .iter()
            .map(|d| {
                reference
                    .classify(std::slice::from_ref(d))
                    .expect("classify one")[0]
                    .clone()
            })
            .collect();

        for (threads, engine) in &engines {
            // Whole batch at once.
            let batched = engine.classify(&docs).expect("classify batch");
            assert_eq!(batched.len(), docs.len());
            for (i, (b, s)) in batched.iter().zip(&singles).enumerate() {
                assert_bitwise_eq(
                    b,
                    s,
                    &format!("{method:?} round {round} doc {i} batched, {threads} thread(s)"),
                );
            }
            // A random partition of the same batch.
            for range in random_partition(&mut rng, docs.len()) {
                let part = engine
                    .classify(&docs[range.clone()])
                    .expect("classify part");
                for (off, p) in part.iter().enumerate() {
                    assert_bitwise_eq(
                        p,
                        &singles[range.start + off],
                        &format!(
                            "{method:?} round {round} doc {} in partition {range:?}, {threads} thread(s)",
                            range.start + off
                        ),
                    );
                }
            }
        }
    }
}

#[test]
fn match_predictions_are_batching_invariant() {
    check_invariance(MethodKind::Match);
}

#[test]
fn xclass_predictions_are_batching_invariant() {
    check_invariance(MethodKind::XClass);
}

#[test]
fn lotclass_predictions_are_batching_invariant() {
    check_invariance(MethodKind::LotClass);
}

#[test]
fn prompt_predictions_are_batching_invariant() {
    check_invariance(MethodKind::Prompt);
}
