//! Cross-tier cache isolation (DESIGN §13): an Exact run and a Fast run of
//! the same method pipeline must never share a tier-sensitive cache entry.
//! The precision tier is part of every PLM-inference stage fingerprint, so
//! a warm Fast run after a cold Exact run recomputes its pipeline (zero
//! cross-tier hits) — and then its *own* rerun is fully warm.
//!
//! This file holds exactly one test: it drives the process-global artifact
//! store and the global `obs` counters, so it needs a process to itself
//! (integration test binaries give it one).

use structmine_engine::{Engine, EngineConfig, EngineSource, MethodKind, PlmSpec};
use structmine_linalg::{ExecPolicy, Precision};

fn load(precision: Precision) -> Engine {
    Engine::load(EngineConfig {
        source: EngineSource::Labels(
            ["sports", "business", "technology"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
        ),
        method: MethodKind::XClass,
        plm: PlmSpec::Pretrained(structmine_plm::cache::Tier::Test),
        seed: None,
        exec: ExecPolicy::with_threads(1).with_precision(precision),
    })
    .expect("engine loads")
}

/// Run the full tiered method pipeline (the memoized XClass run the bench
/// tables replay — the serving fit is deliberately tier-free, fitting is
/// adaptation and always runs Exact).
fn run_pipeline(precision: Precision) {
    load(precision).fitted_predictions().expect("pipeline runs");
}

fn misses() -> u64 {
    structmine_store::obs::counter_value("store.misses")
}

#[test]
fn warm_fast_run_after_cold_exact_run_shares_no_tier_sensitive_entries() {
    // A private store directory: this test is about *which* keys hit, so it
    // must start cold. Set before the global store is first touched.
    let dir = std::env::temp_dir().join(format!("structmine-tier-cache-{}", std::process::id()));
    std::env::set_var("STRUCTMINE_STORE_DIR", dir.display().to_string());
    std::env::set_var("STRUCTMINE_PLM_CACHE_DIR", dir.display().to_string());

    // Cold Exact run: everything below the engine misses and computes.
    run_pipeline(Precision::Exact);
    let after_cold_exact = misses();
    assert!(after_cold_exact > 0, "a cold run must compute something");

    // Warm Exact rerun: the same fingerprints, so nothing recomputes.
    run_pipeline(Precision::Exact);
    assert_eq!(
        misses(),
        after_cold_exact,
        "a warm same-tier rerun must be served entirely from the store"
    );

    // First Fast run over the warm Exact store: the tier-sensitive stages
    // (the XClass pipeline runs PLM inference) carry the tier in their
    // fingerprints, so they must miss — an Exact entry answering here would
    // be cross-tier cache contamination.
    run_pipeline(Precision::Fast);
    let after_cold_fast = misses();
    assert!(
        after_cold_fast > after_cold_exact,
        "a Fast run must not be served from Exact cache entries"
    );

    // Warm Fast rerun: now the Fast entries exist, so it hits its own tier.
    run_pipeline(Precision::Fast);
    assert_eq!(
        misses(),
        after_cold_fast,
        "a warm Fast rerun must be served from the Fast tier's own entries"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
