//! End-to-end integration tests spanning the whole workspace: dataset
//! recipes → pretrained PLM / embeddings → methods → metrics.

use structmine::prelude::*;
use structmine_eval::accuracy;
use structmine_plm::cache::{pretrained, Tier};
use structmine_text::synth::recipes;
use structmine_text::Dataset;

fn test_acc(d: &Dataset, preds: &[usize]) -> f32 {
    let test: Vec<usize> = d.test_idx.iter().map(|&i| preds[i]).collect();
    accuracy(&test, &d.test_gold())
}

#[test]
fn name_only_pipeline_beats_chance_end_to_end() {
    let d = recipes::agnews(0.1, 201).unwrap();
    let plm = pretrained(Tier::Test, 0);
    let out = XClass::default().run(&d, &plm);
    let acc = test_acc(&d, &out.predictions);
    assert!(acc > 0.45, "end-to-end X-Class acc {acc}");
    assert_eq!(out.predictions.len(), d.corpus.len());
}

#[test]
fn methods_are_deterministic_given_seed() {
    let d = recipes::yelp(0.06, 202).unwrap();
    let plm = pretrained(Tier::Test, 0);
    let a = XClass {
        seed: 5,
        ..Default::default()
    }
    .run(&d, &plm);
    let b = XClass {
        seed: 5,
        ..Default::default()
    }
    .run(&d, &plm);
    assert_eq!(a.predictions, b.predictions);
    assert_eq!(a.rep_predictions, b.rep_predictions);
}

#[test]
#[ignore = "known-failing on the Test tier: the tiny PLM lands ~0.72 accuracy \
            while WeSTClass's static embeddings reach ~0.97 on this recipe, \
            beyond the 0.12 tolerance. The ordering the tutorial claims holds \
            on the Standard tier (asserted by the benchmark tables); making it \
            hold on the Test tier needs a stronger small PLM — tracked in \
            ROADMAP.md (open items)."]
fn plm_methods_beat_static_methods_with_names_only() {
    // The tutorial's central claim: PLM-based methods outperform
    // static-embedding methods under name-only supervision.
    let d = recipes::agnews(0.12, 203).unwrap();
    let plm = pretrained(Tier::Test, 0);
    let wv = structmine_embed::Sgns::train(
        &d.corpus,
        &structmine_embed::SgnsConfig {
            epochs: 4,
            dim: 32,
            ..Default::default()
        },
    );
    let sup = d.supervision_names();
    let west = test_acc(&d, &WeSTClass::default().run(&d, &sup, &wv).predictions);
    let x = test_acc(&d, &XClass::default().run(&d, &plm).predictions);
    let lot = test_acc(&d, &LotClass::default().run(&d, &plm).predictions);
    let best_plm = x.max(lot);
    // With the small Test-tier PLM the margin is noisy; the benchmark
    // tables assert the strict ordering on the Standard tier. Here we only
    // require the PLM methods to be in the same league.
    assert!(
        best_plm >= west - 0.12,
        "PLM methods should match or beat static: best PLM {best_plm} vs WeSTClass {west}"
    );
}

#[test]
fn supervised_bound_dominates_weak_supervision() {
    let d = recipes::nyt_coarse(0.1, 204).unwrap();
    let plm = pretrained(Tier::Test, 0);
    let features = structmine::common::plm_features(&d, &plm);
    let sup_acc = test_acc(&d, &structmine::baselines::supervised(&d, &features, 1));
    let weak_acc = test_acc(&d, &XClass::default().run(&d, &plm).predictions);
    assert!(
        sup_acc >= weak_acc - 0.02,
        "supervised {sup_acc} should not trail weak {weak_acc}"
    );
    assert!(sup_acc > 0.8, "supervised bound too weak: {sup_acc}");
}

#[test]
fn every_flat_method_emits_predictions_for_every_doc() {
    let d = recipes::yelp(0.06, 205).unwrap();
    let plm = pretrained(Tier::Test, 0);
    let wv = structmine_embed::Sgns::train(
        &d.corpus,
        &structmine_embed::SgnsConfig {
            epochs: 2,
            dim: 16,
            ..Default::default()
        },
    );
    let n = d.corpus.len();
    let k = d.n_classes();
    let preds: Vec<Vec<usize>> = vec![
        structmine::baselines::ir_tfidf(&d, &d.supervision_keywords()),
        structmine::baselines::dataless(&d, &d.supervision_names(), &wv),
        structmine::baselines::bert_simple_match(&d, &plm),
        WeSTClass::default()
            .run(&d, &d.supervision_names(), &wv)
            .predictions,
        ConWea::default()
            .run(&d, &d.supervision_keywords(), &plm)
            .predictions,
        LotClass::default().run(&d, &plm).predictions,
        XClass::default().run(&d, &plm).predictions,
        PromptClass::default().run(&d, &plm).unwrap().predictions,
    ];
    for (m, p) in preds.iter().enumerate() {
        assert_eq!(p.len(), n, "method {m} wrong length");
        assert!(p.iter().all(|&c| c < k), "method {m} out-of-range class");
    }
}
