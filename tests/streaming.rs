//! Streaming-ingestion integration tests (DESIGN §11).
//!
//! The incremental-equivalence contract, end to end: however a document
//! stream is split into generational deltas, the resulting corpus
//! statistics and served predictions must be byte-identical to a cold
//! build over the concatenated stream — at 1 thread and at 4 — and
//! misordered deltas must fail closed without touching any state.

use proptest::prelude::*;
use rand::Rng;
use structmine_engine::{
    format_prediction_line, Engine, EngineConfig, EngineSource, MethodKind, PlmSpec,
};
use structmine_linalg::rng as lrng;
use structmine_linalg::ExecPolicy;
use structmine_text::tfidf::TfIdf;
use structmine_text::tokenize;
use structmine_text::vocab::TokenId;
use structmine_text::{Corpus, CorpusDelta, DeltaCorpus, DeltaError, Doc, Vocab};

/// Word pool for synthetic streams: a mix so deltas overlap the base
/// vocabulary and also intern new words mid-stream.
const WORDS: &[&str] = &[
    "match", "team", "goal", "league", "market", "stock", "profit", "merger", "court", "ruling",
    "appeal", "verdict", "chip", "software", "device", "network", "vaccine", "trial", "clinic",
    "dose",
];

/// A from-scratch build of `lines`: fresh vocabulary, interning and
/// bumping counts per occurrence in stream order — the reference the
/// incremental merge rule must reproduce bit for bit.
fn cold_build(lines: &[String]) -> Corpus {
    let mut c = Corpus::new(Vocab::new());
    for l in lines {
        let toks = tokenize::encode_interning(l, &mut c.vocab);
        for &t in &toks {
            c.vocab.bump(t);
        }
        c.docs.push(Doc::from_tokens(toks));
    }
    c
}

/// Deterministically derive a stream of text lines from a seed.
fn stream_from_seed(seed: u64, n_docs: usize) -> Vec<String> {
    let mut rng = lrng::seeded(seed);
    (0..n_docs)
        .map(|_| {
            let len = rng.gen_range(1..9);
            (0..len)
                .map(|_| WORDS[rng.gen_range(0..WORDS.len())])
                .collect::<Vec<_>>()
                .join(" ")
        })
        .collect()
}

/// Split `lines` into `k` non-empty chunks at seed-derived cut points.
fn random_chunks(lines: &[String], k: usize, seed: u64) -> Vec<Vec<String>> {
    let k = k.min(lines.len()).max(1);
    let mut rng = lrng::seeded(seed ^ 0x9e37_79b9);
    let mut cuts: Vec<usize> = (0..k - 1).map(|_| rng.gen_range(1..lines.len())).collect();
    cuts.push(0);
    cuts.push(lines.len());
    cuts.sort_unstable();
    cuts.dedup();
    cuts.windows(2)
        .map(|w| lines[w[0]..w[1]].to_vec())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// K delta appends produce the same bits as one cold concatenated
    /// build: corpus fingerprint, vocabulary, document frequencies, and
    /// every IDF value. The split points are arbitrary.
    #[test]
    fn k_delta_appends_equal_one_cold_build(
        seed in 1u64..400,
        k in 1usize..6,
        n_base in 1usize..12,
        n_stream in 1usize..24,
    ) {
        let base = stream_from_seed(seed, n_base);
        let stream = stream_from_seed(seed.wrapping_mul(31), n_stream);

        let mut warm = DeltaCorpus::from_corpus(cold_build(&base));
        for chunk in random_chunks(&stream, k, seed) {
            warm.apply_text(&chunk);
        }

        let all: Vec<String> = base.iter().chain(stream.iter()).cloned().collect();
        let cold = cold_build(&all);

        prop_assert_eq!(warm.corpus().fingerprint(), cold.fingerprint());
        prop_assert_eq!(warm.doc_frequencies(), &cold.doc_frequencies()[..]);
        let warm_idf = warm.tfidf();
        let cold_idf = TfIdf::fit(&cold);
        for t in 0..cold.vocab.len() as TokenId {
            prop_assert_eq!(warm_idf.idf(t).to_bits(), cold_idf.idf(t).to_bits());
        }
    }

    /// Rejected deltas leave every statistic untouched, for arbitrary
    /// forged generation stamps: behind-current fails as a duplicate,
    /// ahead-of-current fails as out-of-order, and nothing is mutated.
    #[test]
    fn misordered_deltas_fail_closed(
        seed in 1u64..400,
        applied in 0u32..4,
        forged in 0u32..9,
    ) {
        let mut dc = DeltaCorpus::from_corpus(cold_build(&stream_from_seed(seed, 4)));
        for g in 0..applied {
            dc.apply_text(&stream_from_seed(seed + u64::from(g), 2));
        }
        prop_assume!(forged != applied + 1); // in-order deltas are accepted
        let before = dc.stats_fingerprint();
        let delta = CorpusDelta {
            generation: forged,
            docs: vec![Doc::from_tokens(vec![0])],
        };
        let err = dc.apply(delta).unwrap_err();
        if forged <= applied {
            prop_assert_eq!(err, DeltaError::Duplicate { generation: forged, current: applied });
        } else {
            prop_assert_eq!(err, DeltaError::OutOfOrder { expected: applied + 1, got: forged });
        }
        prop_assert_eq!(dc.generation(), applied);
        prop_assert_eq!(dc.stats_fingerprint(), before);
    }
}

fn serving_engine(method: MethodKind, threads: usize) -> Engine {
    Engine::load(EngineConfig {
        source: EngineSource::Labels(vec![
            "sports".into(),
            "business".into(),
            "technology".into(),
        ]),
        method,
        plm: PlmSpec::Pretrained(structmine_plm::cache::Tier::Test),
        seed: None,
        exec: ExecPolicy::with_threads(threads),
    })
    .expect("test-tier labels engine loads")
}

/// Render predictions exactly as the CLI and server do, so equality here
/// is equality of the bytes a client would see.
fn rendered(engine: &Engine, lines: &[String]) -> Vec<String> {
    engine
        .ingested_predictions()
        .iter()
        .zip(lines)
        .map(|(p, l)| format_prediction_line(p, l))
        .collect()
}

/// The served half of the contract: splitting a stream into K ingests at
/// 1 thread and ingesting it whole at 4 threads yields byte-identical
/// prediction lines, and the serving rule itself is unchanged by
/// ingestion (classify before == classify after).
#[test]
fn split_ingests_match_whole_ingest_across_thread_counts() {
    let lines = vec![
        "the team won the match with a late goal".to_string(),
        "the market rallied after the profit report".to_string(),
        "the new device ships with faster software".to_string(),
        "the league fined the team after the match".to_string(),
        "the merger lifted the stock price".to_string(),
    ];
    for method in [MethodKind::Match, MethodKind::XClass] {
        let split = serving_engine(method, 1);
        let whole = serving_engine(method, 4);
        let baseline = whole
            .classify(&lines)
            .expect("servable methods classify")
            .iter()
            .zip(&lines)
            .map(|(p, l)| format_prediction_line(p, l))
            .collect::<Vec<_>>();

        split.ingest(&lines[..2]).expect("in-order delta");
        split.ingest(&lines[2..]).expect("in-order delta");
        whole.ingest(&lines).expect("in-order delta");

        assert_eq!(split.generation(), 2);
        assert_eq!(whole.generation(), 1);
        let a = rendered(&split, &lines);
        let b = rendered(&whole, &lines);
        assert_eq!(a, b, "{method:?}: split vs whole ingest bytes differ");
        assert_eq!(a, baseline, "{method:?}: ingest vs classify bytes differ");

        // Frozen rule: ingestion must not move the classifier.
        let after = whole
            .classify(&lines)
            .expect("servable methods classify")
            .iter()
            .zip(&lines)
            .map(|(p, l)| format_prediction_line(p, l))
            .collect::<Vec<_>>();
        assert_eq!(baseline, after, "{method:?}: classify drifted after ingest");
    }
}
