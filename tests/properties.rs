//! Property-based integration tests: invariants that must hold for
//! arbitrary inputs across crate boundaries.

use proptest::prelude::*;
use structmine_linalg::Matrix;
use structmine_nn::selftrain::target_distribution;
use structmine_text::synth::world::{MixComponent, World, WorldConfig};
use structmine_text::synth::{recipes, standard_world};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any generated dataset satisfies basic structural invariants.
    #[test]
    fn recipes_are_structurally_sound(
        recipe_idx in 0usize..recipes::ALL_RECIPES.len(),
        seed in 1u64..50,
    ) {
        let name = recipes::ALL_RECIPES[recipe_idx];
        let d = recipes::by_name(name, 0.05, seed).unwrap();
        // Splits partition the corpus.
        let mut all: Vec<usize> = d.train_idx.iter().chain(&d.test_idx).copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..d.corpus.len()).collect::<Vec<_>>());
        // Labels in range; label metadata parallel arrays agree.
        prop_assert_eq!(d.labels.names.len(), d.labels.keywords.len());
        prop_assert_eq!(d.labels.names.len(), d.labels.descriptions.len());
        for doc in &d.corpus.docs {
            prop_assert!(doc.labels.iter().all(|&l| l < d.n_classes()));
            for &r in &doc.refs {
                prop_assert!(r < d.corpus.len());
            }
        }
        // Taxonomy class nodes map 1:1 onto non-root nodes when present.
        if let Some(tax) = &d.taxonomy {
            prop_assert_eq!(d.class_nodes.len(), d.n_classes());
            for &n in &d.class_nodes {
                prop_assert!(n > 0 && n < tax.len());
            }
        }
    }

    /// The self-training target distribution always yields valid rows and
    /// never decreases the argmax probability.
    #[test]
    fn target_distribution_is_valid_for_random_predictions(
        rows in proptest::collection::vec(
            proptest::collection::vec(0.01f32..1.0, 4), 1..12),
    ) {
        let n = rows.len();
        let mut p = Matrix::zeros(n, 4);
        for (i, row) in rows.iter().enumerate() {
            let sum: f32 = row.iter().sum();
            for (j, v) in row.iter().enumerate() {
                p.set(i, j, v / sum);
            }
        }
        let t = target_distribution(&p);
        for i in 0..n {
            let sum: f32 = t.row(i).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(t.row(i).iter().all(|&v| (0.0..=1.0 + 1e-5).contains(&v)));
        }
    }

    /// Generated documents only contain tokens from their mixture pools.
    #[test]
    fn world_generation_respects_pools(seed in 0u64..500, len in 8usize..64) {
        let world = standard_world(WorldConfig::default());
        let soccer = world.pool("soccer").unwrap();
        let general = world.pool("general").unwrap();
        let mix = [
            MixComponent { pool: soccer, weight: 0.7 },
            MixComponent { pool: general, weight: 0.3 },
        ];
        let mut rng = structmine_linalg::rng::seeded(seed);
        let doc = world.gen_doc_with_len(&mut rng, &mix, len);
        prop_assert_eq!(doc.len(), len);
        let allowed: std::collections::HashSet<_> = world
            .pool_tokens(soccer)
            .iter()
            .chain(world.pool_tokens(general))
            .collect();
        prop_assert!(doc.iter().all(|t| allowed.contains(t)));
    }

    /// Vocabulary interning is stable: the same word never maps to two ids,
    /// and every id round-trips through its surface form.
    #[test]
    fn vocab_round_trips(words in proptest::collection::vec("[a-z]{1,8}", 1..40)) {
        let mut vocab = structmine_text::Vocab::new();
        let ids: Vec<u32> = words.iter().map(|w| vocab.intern(w)).collect();
        for (w, &id) in words.iter().zip(&ids) {
            prop_assert_eq!(vocab.id(w), Some(id));
            prop_assert_eq!(vocab.word(id), w.as_str());
        }
    }

    /// Splitting is deterministic and respects the requested fraction.
    #[test]
    fn split_fraction_is_respected(n in 10usize..500, frac in 0.1f32..0.5) {
        let (train, test) = structmine_text::synth::dataset::split_indices(n, frac, 1);
        let expected = ((n as f32) * frac).round() as usize;
        prop_assert_eq!(test.len(), expected);
        prop_assert_eq!(train.len(), n - expected);
    }
}

#[test]
fn world_polysemes_share_ids_across_all_recipes() {
    // The polysemy invariant the ConWea experiments rely on: one token id
    // for "penalty" across every dataset built from the standard world.
    let a = recipes::agnews(0.05, 1).unwrap();
    let b = recipes::news20_fine(0.05, 2).unwrap();
    let penalty_a = a.corpus.vocab.id("penalty");
    let penalty_b = b.corpus.vocab.id("penalty");
    assert!(penalty_a.is_some());
    assert_eq!(penalty_a, penalty_b);
}

#[test]
fn world_rejects_duplicate_pools() {
    let mut w = World::new(WorldConfig::default());
    w.add_pool("x", &["a"]);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        w.add_pool("x", &["b"]);
    }));
    assert!(result.is_err());
}
