//! Integration tests for the hierarchical and multi-label methods:
//! structural invariants that must hold regardless of accuracy.

use structmine::prelude::*;
use structmine_plm::cache::{pretrained, Tier};
use structmine_text::synth::recipes;

#[test]
fn weshclass_paths_are_always_valid_tree_paths() {
    let d = recipes::arxiv_tree(0.08, 301).unwrap();
    let wv = structmine_embed::Sgns::train(
        &d.corpus,
        &structmine_embed::SgnsConfig {
            epochs: 3,
            dim: 24,
            ..Default::default()
        },
    );
    let out = WeSHClass {
        pseudo_per_class: 20,
        ..Default::default()
    }
    .run(&d, &d.supervision_keywords(), &wv)
    .unwrap();
    let tax = d.taxonomy.as_ref().unwrap();
    for path in &out.path_predictions {
        assert!(!path.is_empty());
        // Each consecutive pair must be parent→child in the taxonomy.
        for w in path.windows(2) {
            let parent_node = d.class_nodes[w[0]];
            let child_node = d.class_nodes[w[1]];
            assert!(
                tax.parents(child_node).contains(&parent_node),
                "broken path {path:?}"
            );
        }
        // Leaf of path must be a taxonomy leaf.
        assert!(tax.is_leaf(d.class_nodes[*path.last().unwrap()]));
    }
}

#[test]
fn taxoclass_outputs_are_ancestor_closed_and_contain_top1() {
    let d = recipes::dbpedia_taxonomy(0.06, 302).unwrap();
    let plm = pretrained(Tier::Test, 0);
    let out = TaxoClass {
        self_train_iters: 0,
        ..Default::default()
    }
    .run(&d, &plm)
    .unwrap();
    let tax = d.taxonomy.as_ref().unwrap();
    for (i, set) in out.label_sets.iter().enumerate() {
        assert!(set.contains(&out.top1[i]), "top1 not in label set");
        for &c in set {
            for anc in tax.ancestors(d.class_nodes[c]) {
                let ac = d.class_nodes.iter().position(|&n| n == anc).unwrap();
                assert!(set.contains(&ac), "ancestor {ac} missing from {set:?}");
            }
        }
    }
}

#[test]
fn micol_rankings_are_permutations_of_the_label_space() {
    let d = recipes::pubmed(0.06, 303).unwrap();
    let plm = pretrained(Tier::Test, 0);
    for encoder in [
        structmine::micol::Encoder::Bi,
        structmine::micol::Encoder::Cross,
    ] {
        let rankings = MiCoL {
            encoder,
            ..Default::default()
        }
        .run(&d, &plm);
        assert_eq!(rankings.len(), d.corpus.len());
        for r in rankings.iter().take(20) {
            let mut sorted = r.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..d.n_classes()).collect::<Vec<_>>());
        }
    }
}

#[test]
fn hierarchy_supervision_modes_agree_on_structure() {
    // KEYWORDS and DOCS supervision must both produce valid paths on the
    // same tree (quality differs; structure must not).
    let d = recipes::nyt_tree(0.08, 304).unwrap();
    let wv = structmine_embed::Sgns::train(
        &d.corpus,
        &structmine_embed::SgnsConfig {
            epochs: 3,
            dim: 24,
            ..Default::default()
        },
    );
    for sup in [d.supervision_keywords(), d.supervision_docs(3, 1)] {
        let out = WeSHClass {
            pseudo_per_class: 15,
            ..Default::default()
        }
        .run(&d, &sup, &wv)
        .unwrap();
        assert_eq!(out.path_predictions.len(), d.corpus.len());
        assert!(out.path_predictions.iter().all(|p| p.len() == 2));
    }
}

#[test]
fn metacat_signal_sets_produce_valid_predictions() {
    let d = recipes::twitter(0.08, 305).unwrap();
    let sup = d.supervision_docs(4, 2);
    let cfg = MetaCat {
        samples: 30_000,
        ..Default::default()
    };
    for signals in [
        structmine::metacat::SignalSet::Full,
        structmine::metacat::SignalSet::TextOnly,
        structmine::metacat::SignalSet::GraphOnly,
    ] {
        let out = cfg.run_with_signals(&d, &sup, signals).unwrap();
        assert_eq!(out.predictions.len(), d.corpus.len());
        assert!(out.predictions.iter().all(|&c| c < d.n_classes()));
    }
}
