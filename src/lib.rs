//! Umbrella crate for the `structmine` workspace: re-exports the public API of
//! every member crate so examples and integration tests have one import root.
//!
//! Library users should depend on the individual crates (`structmine`,
//! `structmine-text`, ...) directly; this crate exists for the repository's
//! own examples and cross-crate integration tests.

pub use structmine as core;
pub use structmine_cluster as cluster;
pub use structmine_embed as embed;
pub use structmine_eval as eval;
pub use structmine_linalg as linalg;
pub use structmine_nn as nn;
pub use structmine_plm as plm;
pub use structmine_text as text;
