//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! the small slice of `rand`'s API it actually uses: a seedable
//! deterministic generator ([`rngs::StdRng`], xoshiro256** seeded through
//! SplitMix64), [`Rng::gen_range`] / [`Rng::gen`], and
//! [`seq::SliceRandom::shuffle`]. Streams are *not* bit-compatible with the
//! real `rand` crate — every consumer in this workspace only relies on
//! determinism per seed, never on specific values.

use std::ops::{Range, RangeInclusive};

/// Core trait: a source of uniformly distributed `u64`s.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (high bits of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling helpers layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Sample from the type's standard distribution (`[0,1)` for floats,
    /// fair coin for `bool`, full range for integers).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        (f64::sample_standard(self)) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Ranges a uniform sample can be drawn from.
pub trait SampleRange<T> {
    /// Draw one sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range: every value is fair game.
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_range!(usize, u8, u16, u32, u64);

macro_rules! signed_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add((rng.next_u64() % span) as i64) as $t
            }
        }
    )*};
}

signed_int_range!(i8, i16, i32, i64, isize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let unit = <$t>::sample_standard(rng);
                let v = self.start + unit * (self.end - self.start);
                // Guard against rounding up to the excluded endpoint.
                if v >= self.end { self.start } else { v }
            }
        }
    )*};
}

float_range!(f32, f64);

/// Types with a standard distribution for [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one standard sample.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 uniform mantissa bits in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**
    /// seeded via SplitMix64. Not bit-compatible with `rand::rngs::StdRng`,
    /// but equally deterministic per seed.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related helpers.

    use super::{Rng, RngCore};

    /// Slice extensions: shuffling and random choice.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` when empty.
        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<f32>(), b.gen::<f32>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<f32> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<f32> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.gen_range(5usize..9);
            assert!((5..9).contains(&x));
            let y = rng.gen_range(2u32..=4);
            assert!((2..=4).contains(&y));
            let f = rng.gen_range(-1.5f32..2.5);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn unit_float_in_range() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let f: f32 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<_>>(),
            "shuffle left slice unchanged"
        );
    }
}
