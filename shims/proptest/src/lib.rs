//! Offline stand-in for `proptest`.
//!
//! Implements the slice of the proptest API this workspace's tests use:
//! the [`Strategy`] trait with `prop_map`/`prop_shuffle`, range and
//! collection strategies, a simple `[chars]{m,n}` string strategy, and the
//! `proptest!` / `prop_assert*` / `prop_assume!` macros. Differences from
//! the real crate: cases are plain seeded-random samples (no shrinking on
//! failure) and failure output is a normal assertion panic.

use std::ops::Range;

/// Test-runner configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// Deterministic generator used by strategies (xorshift64*).
#[derive(Clone, Debug)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeded constructor; `proptest!` derives the seed from the test name.
    pub fn new(seed: u64) -> Self {
        TestRng(seed | 1)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Randomly permute a generated `Vec`.
    fn prop_shuffle(self) -> Shuffle<Self>
    where
        Self: Sized,
    {
        Shuffle { inner: self }
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_shuffle`].
pub struct Shuffle<S> {
    inner: S,
}

impl<T, S: Strategy<Value = Vec<T>>> Strategy for Shuffle<S> {
    type Value = Vec<T>;

    fn sample(&self, rng: &mut TestRng) -> Vec<T> {
        let mut v = self.inner.sample(rng);
        for i in (1..v.len()).rev() {
            let j = rng.below(i as u64 + 1) as usize;
            v.swap(i, j);
        }
        v
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

int_strategy!(usize, u8, u16, u32, u64);

macro_rules! float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let v = self.start + rng.unit_f64() as $t * (self.end - self.start);
                if v >= self.end { self.start } else { v }
            }
        }
    )*};
}

float_strategy!(f32, f64);

/// `&str` patterns of the form `[chars]{m,n}` generate random strings from
/// the character class (ranges like `a-z` supported).
impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        let (class, min, max) = parse_class_pattern(self)
            .unwrap_or_else(|| panic!("unsupported string strategy pattern: {self:?}"));
        let len = min + rng.below((max - min + 1) as u64) as usize;
        (0..len)
            .map(|_| class[rng.below(class.len() as u64) as usize])
            .collect()
    }
}

fn parse_class_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let (class_str, counts) = rest.split_once(']')?;
    let counts = counts.strip_prefix('{')?.strip_suffix('}')?;
    let (min, max) = counts.split_once(',')?;
    let (min, max) = (min.trim().parse().ok()?, max.trim().parse().ok()?);
    let chars: Vec<char> = class_str.chars().collect();
    let mut class = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            for c in chars[i]..=chars[i + 2] {
                class.push(c);
            }
            i += 3;
        } else {
            class.push(chars[i]);
            i += 1;
        }
    }
    if class.is_empty() || min > max {
        return None;
    }
    Some((class, min, max))
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::Range;

    /// Accepted size specifications: a fixed size or a half-open range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    /// `Vec`s of values from `element`, with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + (rng.next_u64() % span.max(1)) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `HashSet`s of values from `element`; sizes below `size`'s minimum may
    /// occur only when the element domain is too small.
    pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`hash_set`].
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        fn sample(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let target = self.size.min + (rng.next_u64() % span.max(1)) as usize;
            let mut out = HashSet::new();
            // Bounded attempts so tiny domains cannot loop forever.
            for _ in 0..target.saturating_mul(20).max(50) {
                if out.len() >= target {
                    break;
                }
                out.insert(self.element.sample(rng));
            }
            out
        }

        type Value = HashSet<S::Value>;
    }
}

/// Strategy for "any value" of a type. Only the unsigned/float/bool leaves
/// are wired up; extend as tests need them.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// The strategy type returned by [`Arbitrary::arbitrary`].
    type Strategy: Strategy<Value = Self>;

    /// The whole-domain strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Whole-domain strategy for `f32`: finite values in `[-1e6, 1e6]`.
pub struct AnyF32;

impl Strategy for AnyF32 {
    type Value = f32;

    fn sample(&self, rng: &mut TestRng) -> f32 {
        (rng.unit_f64() as f32 - 0.5) * 2.0e6
    }
}

impl Arbitrary for f32 {
    type Strategy = AnyF32;

    fn arbitrary() -> AnyF32 {
        AnyF32
    }
}

/// Whole-domain strategy for `bool`.
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;

    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;

    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

/// Seed helper: stable hash of the test path so each property gets its own
/// deterministic stream.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude::*`.

    /// The crate itself, so `prop::collection::vec(..)` paths work.
    pub use crate as prop;
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// The property-test macro: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running `cases` seeded random samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::new(
                $crate::seed_from_name(concat!(module_path!(), "::", stringify!($name))),
            );
            for __case in 0..__cfg.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)*
                // A closure so `prop_assume!` can skip the case via `return`.
                let __one_case = || { $body };
                __one_case();
            }
        }
    )*};
}

/// Assert within a property; panics (no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assert within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Inequality assert within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Skip the current case when its precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..9, f in -2.0f32..2.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn vec_strategy_respects_size(v in collection::vec(0u32..5, 2..7)) {
            prop_assert!(v.len() >= 2 && v.len() < 7);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn shuffle_preserves_elements(
            v in Just((0usize..10).collect::<Vec<_>>()).prop_shuffle(),
        ) {
            let mut sorted = v.clone();
            sorted.sort_unstable();
            prop_assert_eq!(sorted, (0..10).collect::<Vec<_>>());
        }

        #[test]
        fn string_pattern_generates_class(s in "[a-c]{2,5}") {
            prop_assert!(s.len() >= 2 && s.len() <= 5);
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }

        #[test]
        fn assume_skips_cases(x in 0usize..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    fn hash_set_strategy_produces_distinct_values() {
        let mut rng = crate::TestRng::new(7);
        let s = collection::hash_set(0usize..100, 3..6);
        let set = crate::Strategy::sample(&s, &mut rng);
        assert!(set.len() >= 3 && set.len() < 6);
    }

    #[test]
    fn same_name_same_stream() {
        let mut a = crate::TestRng::new(crate::seed_from_name("x"));
        let mut b = crate::TestRng::new(crate::seed_from_name("x"));
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
