//! Offline stand-in for `criterion`.
//!
//! Provides the `Criterion` / `BenchmarkGroup` / `Bencher` API surface and
//! the `criterion_group!` / `criterion_main!` macros, backed by a plain
//! wall-clock harness: warm-up, then `sample_size` timed runs, reporting
//! min / mean / max per benchmark. No statistical analysis or HTML reports,
//! but the printed numbers are comparable across runs on the same machine.

use std::time::{Duration, Instant};

/// Re-export of the standard black-box hint, as `criterion::black_box`.
pub use std::hint::black_box;

/// Benchmark driver; collects and prints measurements.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    results: Vec<(String, Duration)>,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Like real criterion, the first free-standing CLI argument is a
        // substring filter: `cargo bench -- parallel_encode` runs only the
        // benchmarks whose full name contains "parallel_encode".
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "--bench");
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_millis(500),
            results: Vec::new(),
            filter,
        }
    }
}

impl Criterion {
    fn matches(&self, name: &str) -> bool {
        self.filter.as_ref().is_none_or(|f| name.contains(f))
    }

    /// Benchmark one closure under `name`.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if !self.matches(name) {
            return self;
        }
        let cfg = BenchConfig {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
        };
        let mean = run_bench(name, &cfg, &mut f);
        self.results.push((name.to_string(), mean));
        self
    }

    /// Start a named group whose settings can be tuned independently.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            prefix: name.to_string(),
            cfg: BenchConfig {
                sample_size: 10,
                measurement_time: Duration::from_secs(5),
                warm_up_time: Duration::from_millis(500),
            },
        }
    }

    /// Print the collected table (called by `criterion_main!`).
    pub fn final_summary(&self) {
        if self.results.is_empty() {
            return;
        }
        eprintln!("\nbenchmark summary ({} entries):", self.results.len());
        for (name, mean) in &self.results {
            eprintln!("  {name:<40} {}", fmt_duration(*mean));
        }
    }
}

/// Per-group measurement settings.
#[derive(Clone, Copy)]
struct BenchConfig {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

/// A benchmark group (criterion-compatible builder API).
pub struct BenchmarkGroup<'c> {
    parent: &'c mut Criterion,
    prefix: String,
    cfg: BenchConfig,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.cfg.sample_size = n;
        self
    }

    /// Cap the total measurement time for each benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.cfg.measurement_time = d;
        self
    }

    /// Set the warm-up duration before timing starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.cfg.warm_up_time = d;
        self
    }

    /// Benchmark one closure under `group/name`.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{name}", self.prefix);
        if !self.parent.matches(&full) {
            return self;
        }
        let mean = run_bench(&full, &self.cfg, &mut f);
        self.parent.results.push((full, mean));
        self
    }

    /// Finish the group (no-op; provided for API compatibility).
    pub fn finish(&mut self) {}
}

/// Passed to the benchmark closure; `iter` runs and times the payload.
pub struct Bencher {
    cfg: BenchConfig,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Measure `f` repeatedly; one timed call per sample after warm-up.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run until the warm-up budget is spent (at least once).
        let warm_start = Instant::now();
        loop {
            black_box(f());
            if warm_start.elapsed() >= self.cfg.warm_up_time {
                break;
            }
        }
        let measure_start = Instant::now();
        for _ in 0..self.cfg.sample_size {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
            if measure_start.elapsed() >= self.cfg.measurement_time {
                break;
            }
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, cfg: &BenchConfig, f: &mut F) -> Duration {
    let mut b = Bencher {
        cfg: *cfg,
        samples: Vec::new(),
    };
    f(&mut b);
    if b.samples.is_empty() {
        eprintln!("{name:<40} (no samples collected)");
        return Duration::ZERO;
    }
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    let min = *b.samples.iter().min().unwrap();
    let max = *b.samples.iter().max().unwrap();
    eprintln!(
        "{name:<40} time: [{} {} {}]  ({} samples)",
        fmt_duration(min),
        fmt_duration(mean),
        fmt_duration(max),
        b.samples.len(),
    );
    mean
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.4} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.4} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.4} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Bundle benchmark functions into a group runner, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generate `main` running the given group runners.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        // The surrounding test harness's own CLI args must not filter here.
        let mut c = Criterion {
            filter: None,
            ..Criterion::default()
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(200));
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.finish();
        assert_eq!(c.results.len(), 1);
        assert!(c.results[0].0 == "g/noop");
    }

    #[test]
    fn fmt_duration_picks_sensible_units() {
        assert!(fmt_duration(Duration::from_nanos(500)).ends_with("ns"));
        assert!(fmt_duration(Duration::from_micros(5)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(5)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(5)).ends_with(" s"));
    }
}
