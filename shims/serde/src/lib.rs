//! Offline stand-in for `serde`.
//!
//! The build environment cannot reach crates.io, so the workspace carries a
//! minimal self-serialization model: every serializable type converts to and
//! from a JSON-shaped [`Value`] tree, and `serde_json` (the sibling shim)
//! renders that tree as real JSON text. The `#[derive(Serialize,
//! Deserialize)]` macros are provided by the local `serde_derive` proc-macro
//! crate and support named-field structs plus enums with unit and newtype
//! variants — exactly the shapes this workspace serializes.

use std::collections::HashMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree: the interchange format between [`Serialize`]
/// impls and text codecs such as the `serde_json` shim.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (only produced for negative numbers).
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Floating point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object; insertion-ordered.
    Map(Vec<(String, Value)>),
}

/// Serialization/deserialization error.
#[derive(Clone, Debug)]
pub struct Error(String);

impl Error {
    /// Build an error from a message.
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Conversion into a [`Value`] tree.
pub trait Serialize {
    /// Serialize `self` as a [`Value`].
    fn to_value(&self) -> Value;
}

/// Reconstruction from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserialize from a [`Value`], failing on shape mismatches.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------- helpers

/// Look up `key` in a [`Value::Map`] (derive-generated code calls this).
pub fn map_get<'a>(v: &'a Value, key: &str) -> Result<&'a Value, Error> {
    match v {
        Value::Map(entries) => entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| Error::msg(format!("missing field `{key}`"))),
        _ => Err(Error::msg(format!(
            "expected map while reading field `{key}`"
        ))),
    }
}

/// Decompose an externally-tagged enum value: either a bare string (unit
/// variant) or a single-entry map (newtype variant).
pub fn expect_enum(v: &Value) -> Result<(&str, Option<&Value>), Error> {
    match v {
        Value::Str(s) => Ok((s.as_str(), None)),
        Value::Map(entries) if entries.len() == 1 => {
            Ok((entries[0].0.as_str(), Some(&entries[0].1)))
        }
        _ => Err(Error::msg("expected enum (string or single-entry map)")),
    }
}

// --------------------------------------------------------------- integers

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::UInt(u) => <$t>::try_from(*u)
                        .map_err(|_| Error::msg("integer out of range")),
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| Error::msg("integer out of range")),
                    Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 => Ok(*f as $t),
                    _ => Err(Error::msg(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                if *self < 0 { Value::Int(*self as i64) } else { Value::UInt(*self as u64) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::UInt(u) => <$t>::try_from(*u)
                        .map_err(|_| Error::msg("integer out of range")),
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| Error::msg("integer out of range")),
                    Value::Float(f) if f.fract() == 0.0 => Ok(*f as $t),
                    _ => Err(Error::msg(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize);

// ----------------------------------------------------------------- floats

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                // JSON has no Inf/NaN; represent them as null (as serde_json
                // does) and let deserialization restore NaN.
                if self.is_finite() { Value::Float(*self as f64) } else { Value::Null }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::Null => Ok(<$t>::NAN),
                    _ => Err(Error::msg(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

// ------------------------------------------------------------ other leaves

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::msg("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::msg("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

// ------------------------------------------------------------- containers

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::msg("expected array")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            _ => Err(Error::msg("expected 2-tuple")),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) if items.len() == 3 => Ok((
                A::from_value(&items[0])?,
                B::from_value(&items[1])?,
                C::from_value(&items[2])?,
            )),
            _ => Err(Error::msg("expected 3-tuple")),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort keys so serialized bytes are deterministic across runs.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            _ => Err(Error::msg("expected map")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_primitives() {
        assert_eq!(u32::from_value(&7u32.to_value()).unwrap(), 7);
        assert_eq!(i64::from_value(&(-3i64).to_value()).unwrap(), -3);
        assert_eq!(f32::from_value(&1.5f32.to_value()).unwrap(), 1.5);
        assert!(f32::from_value(&f32::NAN.to_value()).unwrap().is_nan());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(Option::<u8>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn round_trip_containers() {
        let v = vec![(1usize, 2usize), (3, 4)];
        let back: Vec<(usize, usize)> = Deserialize::from_value(&v.to_value()).unwrap();
        assert_eq!(back, v);

        let mut m = HashMap::new();
        m.insert("a".to_string(), 1u32);
        m.insert("b".to_string(), 2u32);
        let back: HashMap<String, u32> = Deserialize::from_value(&m.to_value()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn shape_mismatch_is_an_error() {
        assert!(u32::from_value(&Value::Str("x".into())).is_err());
        assert!(Vec::<u8>::from_value(&Value::Bool(true)).is_err());
    }
}
