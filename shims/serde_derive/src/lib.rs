//! `#[derive(Serialize, Deserialize)]` for the local `serde` shim.
//!
//! Implemented without `syn`/`quote` (no registry access): the input token
//! stream is walked by hand and the generated impl is assembled as source
//! text, then re-parsed. Supported shapes — the only ones this workspace
//! serializes:
//! * structs with named fields,
//! * enums whose variants are unit or single-field tuples (newtype).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What we learned about the deriving type.
enum Shape {
    /// Named-field struct: field identifiers in declaration order.
    Struct { name: String, fields: Vec<String> },
    /// Enum: `(variant name, has payload)` in declaration order.
    Enum {
        name: String,
        variants: Vec<(String, bool)>,
    },
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse(input) {
        Ok(Shape::Struct { name, fields }) => {
            let entries: String = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})),"))
                .collect();
            parse_output(format!(
                "impl ::serde::Serialize for {name} {{\
                     fn to_value(&self) -> ::serde::Value {{\
                         ::serde::Value::Map(vec![{entries}])\
                     }}\
                 }}"
            ))
        }
        Ok(Shape::Enum { name, variants }) => {
            let arms: String = variants
                .iter()
                .map(|(v, has_payload)| {
                    if *has_payload {
                        format!(
                            "{name}::{v}(__f0) => ::serde::Value::Map(vec![(\"{v}\".to_string(), ::serde::Serialize::to_value(__f0))]),"
                        )
                    } else {
                        format!("{name}::{v} => ::serde::Value::Str(\"{v}\".to_string()),")
                    }
                })
                .collect();
            parse_output(format!(
                "impl ::serde::Serialize for {name} {{\
                     fn to_value(&self) -> ::serde::Value {{\
                         match self {{ {arms} }}\
                     }}\
                 }}"
            ))
        }
        Err(e) => error(&e),
    }
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse(input) {
        Ok(Shape::Struct { name, fields }) => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(::serde::map_get(__v, \"{f}\")?)?,"
                    )
                })
                .collect();
            parse_output(format!(
                "impl ::serde::Deserialize for {name} {{\
                     fn from_value(__v: &::serde::Value) -> Result<Self, ::serde::Error> {{\
                         Ok({name} {{ {inits} }})\
                     }}\
                 }}"
            ))
        }
        Ok(Shape::Enum { name, variants }) => {
            let arms: String = variants
                .iter()
                .map(|(v, has_payload)| {
                    if *has_payload {
                        format!(
                            "\"{v}\" => Ok({name}::{v}(::serde::Deserialize::from_value(\
                                 __inner.ok_or_else(|| ::serde::Error::msg(\"missing payload for variant `{v}`\"))?\
                             )?)),"
                        )
                    } else {
                        format!("\"{v}\" => Ok({name}::{v}),")
                    }
                })
                .collect();
            parse_output(format!(
                "impl ::serde::Deserialize for {name} {{\
                     fn from_value(__v: &::serde::Value) -> Result<Self, ::serde::Error> {{\
                         let (__tag, __inner) = ::serde::expect_enum(__v)?;\
                         match __tag {{\
                             {arms}\
                             __other => Err(::serde::Error::msg(format!(\
                                 \"unknown variant `{{__other}}` for {name}\"))),\
                         }}\
                     }}\
                 }}"
            ))
        }
        Err(e) => error(&e),
    }
}

fn parse_output(src: String) -> TokenStream {
    src.parse().expect("serde_derive generated invalid Rust")
}

fn error(msg: &str) -> TokenStream {
    format!("compile_error!(\"serde_derive shim: {msg}\");")
        .parse()
        .unwrap()
}

/// Walk the item tokens: skip attributes and visibility, find
/// `struct`/`enum`, the type name, and the body group.
fn parse(input: TokenStream) -> Result<Shape, String> {
    let mut iter = input.into_iter().peekable();
    let mut kind: Option<String> = None;
    let mut name: Option<String> = None;
    while let Some(tt) = iter.next() {
        match tt {
            // Attribute: `#` followed by a bracket group.
            TokenTree::Punct(p) if p.as_char() == '#' => {
                iter.next(); // the [...] group
            }
            TokenTree::Ident(id) => {
                let s = id.to_string();
                match s.as_str() {
                    "pub" => {
                        // Possible `pub(crate)` — skip the qualifier group.
                        if let Some(TokenTree::Group(g)) = iter.peek() {
                            if g.delimiter() == Delimiter::Parenthesis {
                                iter.next();
                            }
                        }
                    }
                    "struct" | "enum" => {
                        kind = Some(s);
                        if let Some(TokenTree::Ident(n)) = iter.next() {
                            name = Some(n.to_string());
                        } else {
                            return Err("expected type name".into());
                        }
                    }
                    _ => {}
                }
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                let name = name.clone().ok_or("body before type name")?;
                return match kind.as_deref() {
                    Some("struct") => Ok(Shape::Struct {
                        name,
                        fields: parse_named_fields(g.stream())?,
                    }),
                    Some("enum") => Ok(Shape::Enum {
                        name,
                        variants: parse_variants(g.stream())?,
                    }),
                    _ => Err("body before struct/enum keyword".into()),
                };
            }
            _ => {}
        }
    }
    Err("unsupported shape (tuple structs and generics are not supported)".into())
}

/// Field names from a named-struct body. Commas nested in `<...>` or any
/// delimiter group do not split fields.
fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        // Skip attributes and visibility before the field name.
        loop {
            match iter.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    iter.next();
                    iter.next(); // [...] group
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    iter.next();
                    if let Some(TokenTree::Group(g)) = iter.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            iter.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(tt) = iter.next() else { break };
        let TokenTree::Ident(field) = tt else {
            return Err(format!("expected field name, found `{tt}`"));
        };
        fields.push(field.to_string());
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after field name, found {other:?}")),
        }
        // Consume the type: angle-bracket aware scan to the next top-level comma.
        let mut angle = 0i32;
        for tt in iter.by_ref() {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => break,
                _ => {}
            }
        }
    }
    Ok(fields)
}

/// Variant names and arities from an enum body.
fn parse_variants(body: TokenStream) -> Result<Vec<(String, bool)>, String> {
    let mut variants = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        loop {
            match iter.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    iter.next();
                    iter.next();
                }
                _ => break,
            }
        }
        let Some(tt) = iter.next() else { break };
        let TokenTree::Ident(variant) = tt else {
            return Err(format!("expected variant name, found `{tt}`"));
        };
        let vname = variant.to_string();
        let mut has_payload = false;
        match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                // Newtype only: a top-level comma inside means multiple fields.
                let mut angle = 0i32;
                for tt in g.stream() {
                    match tt {
                        TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                        TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                        TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                            return Err(format!(
                                "variant `{vname}` has multiple fields; only newtype variants are supported"
                            ));
                        }
                        _ => {}
                    }
                }
                has_payload = true;
                iter.next();
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                return Err(format!(
                    "variant `{vname}` has named fields; only unit/newtype variants are supported"
                ));
            }
            _ => {}
        }
        variants.push((vname, has_payload));
        // Skip any discriminant and the trailing comma.
        for tt in iter.by_ref() {
            if let TokenTree::Punct(p) = &tt {
                if p.as_char() == ',' {
                    break;
                }
            }
        }
    }
    Ok(variants)
}
