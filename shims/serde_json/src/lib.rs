//! Offline stand-in for `serde_json`.
//!
//! Renders the local `serde` shim's [`Value`] tree as JSON text and parses
//! JSON text back into it. Covers the JSON grammar this workspace produces:
//! objects, arrays, strings (with escapes), numbers, booleans and null.

pub use serde::Error;
use serde::{Deserialize, Serialize, Value};

/// Serialize a value to a JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Serialize a value to JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Deserialize a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg("trailing characters after JSON value"));
    }
    T::from_value(&v)
}

/// Deserialize a value from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|_| Error::msg("invalid UTF-8"))?;
    from_str(s)
}

// ------------------------------------------------------------------ writer

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` prints the shortest representation that round-trips.
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ------------------------------------------------------------------ parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::msg("unexpected end of JSON"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'{' => self.parse_object(),
            b'[' => self.parse_array(),
            b'"' => Ok(Value::Str(self.parse_string()?)),
            b't' => self.parse_lit("true", Value::Bool(true)),
            b'f' => self.parse_lit("false", Value::Bool(false)),
            b'n' => self.parse_lit("null", Value::Null),
            _ => self.parse_number(),
        }
    }

    fn parse_lit(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::msg(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            let key = self.parse_string()?;
            self.expect(b':')?;
            let val = self.parse_value()?;
            entries.push((key, val));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::msg("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::msg("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(Error::msg("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(Error::msg("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::msg("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::msg("bad \\u escape"))?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(Error::msg("unknown escape")),
                    }
                }
                _ => {
                    // Multi-byte UTF-8: copy the full scalar.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let end = start + width;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| Error::msg("truncated UTF-8"))?;
                    out.push_str(
                        std::str::from_utf8(chunk).map_err(|_| Error::msg("invalid UTF-8"))?,
                    );
                    self.pos = end;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.bytes.len()
            && matches!(
                self.bytes[self.pos],
                b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'
            )
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if text.is_empty() {
            return Err(Error::msg(format!("expected value at byte {start}")));
        }
        if text.contains(['.', 'e', 'E']) {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::msg("invalid float"))
        } else if let Some(stripped) = text.strip_prefix('-') {
            stripped
                .parse::<u64>()
                .map(|u| Value::Int(-(u as i64)))
                .map_err(|_| Error::msg("invalid integer"))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error::msg("invalid integer"))
        }
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip_through_text() {
        let v = vec![1.5f32, -2.0, 0.25];
        let s = to_string(&v).unwrap();
        let back: Vec<f32> = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn float_precision_survives() {
        let v = vec![0.1f32, 1.0e-7, 3.402_823_5e38, f32::MIN_POSITIVE];
        let back: Vec<f32> = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn strings_with_escapes_round_trip() {
        let s = "a\"b\\c\nd\te\u{1F600}".to_string();
        let back: String = from_str(&to_string(&s).unwrap()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn nested_structures_round_trip() {
        let v: Vec<(String, Vec<u32>)> = vec![("x".into(), vec![1, 2]), ("y".into(), vec![])];
        let back: Vec<(String, Vec<u32>)> = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(from_str::<u32>("not json").is_err());
        assert!(from_str::<u32>("1 2").is_err());
        assert!(from_str::<Vec<u32>>("[1,").is_err());
    }
}
