//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s non-poisoning API:
//! `lock()` returns the guard directly. A poisoned std lock (a panic while
//! held) is recovered rather than propagated, matching `parking_lot`'s
//! behavior of not having poisoning at all.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion lock; `lock()` never returns `Err`.
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create the lock.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Acquire, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// Reader-writer lock; `read()`/`write()` never return `Err`.
#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create the lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Acquire shared access, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquire exclusive access, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = std::sync::Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn rwlock_allows_concurrent_reads() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
    }
}
